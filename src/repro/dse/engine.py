"""The unified DSE campaign engine.

Every exploration loop in this repository has the same skeleton — generate
candidates, score them with a surrogate, simulate the chosen few, track the
measured Pareto front — but the seed implementation grew three disjoint
copies of it (:class:`~repro.dse.explorer.PredictorGuidedExplorer`,
:class:`~repro.dse.active.ActiveLearningExplorer`, NSGA-II validation
snippets in the examples).  :class:`CampaignEngine` owns that skeleton once:

* **objective handling** — :class:`ObjectiveSet` holds names and maximize
  flags and converts measured/predicted matrices to minimisation form;
* **candidate generation** — pluggable :class:`CandidateGenerator`
  (:class:`RandomPool`, :class:`FocusedPool` for attention-guided pruned
  pools, :class:`NSGA2Evolve` reusing the :mod:`repro.dse.nsga2`
  machinery);
* **acquisition scoring** — pluggable
  :class:`~repro.dse.acquisition.AcquisitionStrategy`;
* **measure/record bookkeeping** — one vectorized
  :meth:`~repro.sim.simulator.Simulator.run_batch` per acquisition batch and
  a :class:`QualityTracker` that records front size and hypervolume per
  round (exact 2-D sweep; seeded Monte-Carlo estimate for 3+ objectives,
  with the sample count recorded alongside; single-objective campaigns
  still warn explicitly instead of silently reporting zero).

The legacy explorers are thin strategy configurations over
:meth:`CampaignEngine.run` (their pre-refactor loops survive as
``explore_reference``, pinned bitwise by
``tests/test_dse_engine_equivalence.py``).  On top,
:meth:`CampaignEngine.run_campaign` explores *many* workloads at once from
one shared candidate pool: the pool is sampled and encoded once, each
workload screens it with its own multi-objective surrogate (one stacked
forward when the surrogate supports it), and the union of all selections is
measured with a single :meth:`~repro.sim.simulator.Simulator.run_sweep` —
the batched cross-workload path ``MetaDSE.explore`` and the ``dse`` CLI
subcommand drive, benchmarked in
``benchmarks/test_dse_campaign_throughput.py``.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.designspace.encoding import OrdinalEncoder
from repro.designspace.sampling import BaseSampler, FocusedSampler, RandomSampler
from repro.designspace.space import Configuration, DesignSpace
from repro.dse.acquisition import (
    AcquisitionContext,
    AcquisitionStrategy,
    ParetoRankAcquisition,
)
from repro.dse.pareto import (
    fast_pareto_front,
    hypervolume_2d,
    to_minimization,
)
from repro.dse.surrogates import MultiObjectiveSurrogate
from repro.sim.simulator import Simulator
from repro.utils.rng import SeedLike


# -- objectives -------------------------------------------------------------------
@dataclass(frozen=True)
class ObjectiveSet:
    """Named objectives with their optimisation sense.

    The single owner of the ``maximize`` convention: everywhere else in the
    engine, objective matrices are already in *minimisation* form (produced
    by :meth:`to_minimization`).
    """

    names: tuple[str, ...]
    maximize: tuple[bool, ...]

    def __post_init__(self) -> None:
        if not self.names:
            raise ValueError("ObjectiveSet needs at least one objective")
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate objective names: {self.names}")
        if len(self.maximize) != len(self.names):
            raise ValueError("one maximize flag per objective name is required")

    @classmethod
    def from_names(
        cls,
        names: Sequence[str],
        maximize: Optional[Mapping[str, bool]] = None,
    ) -> "ObjectiveSet":
        """Build from names with the repository's default senses.

        Unspecified objectives follow the convention the explorers always
        used: ``ipc`` is maximised, everything else minimised.
        """
        names = tuple(names)
        maximize = maximize or {}
        flags = tuple(bool(maximize.get(name, name == "ipc")) for name in names)
        return cls(names=names, maximize=flags)

    @property
    def num_objectives(self) -> int:
        return len(self.names)

    def flags(self) -> list[bool]:
        """Maximize flags as the plain list the Pareto helpers accept."""
        return list(self.maximize)

    def to_minimization(self, values: np.ndarray) -> np.ndarray:
        """Negate the maximised columns so every objective is minimised."""
        return to_minimization(values, self.flags())


# -- candidate generation ------------------------------------------------------------
class CandidateGenerator(abc.ABC):
    """Propose candidate configurations for one screening round."""

    #: Whether proposals depend on the surrogate (True disables the shared
    #: cross-workload candidate pool in :meth:`CampaignEngine.run_campaign`).
    surrogate_dependent: bool = False

    #: Whether :meth:`propose_for` is a pure function of the generator's
    #: construction arguments and ``(workload, round_index)`` — invariant to
    #: the executor, the shard count, and any proposals already made for
    #: other workloads or rounds.  Rank-stable generators draw from keyed
    #: per-``(workload, round)`` RNG streams (:func:`repro.utils.rng.
    #: keyed_rng`) instead of a shared mutable one, which is what qualifies
    #: them for the runtime's per-workload-pool parallel path
    #: (``docs/runtime.md``) even when they are surrogate-dependent.
    rank_stable: bool = False

    @abc.abstractmethod
    def propose(
        self,
        engine: "CampaignEngine",
        surrogate: Optional[MultiObjectiveSurrogate],
        round_index: int,
    ) -> list[Configuration]:
        """Return the candidate pool for *round_index*."""

    def propose_for(
        self,
        engine: "CampaignEngine",
        surrogate: Optional[MultiObjectiveSurrogate],
        workload: Optional[str],
        round_index: int,
    ) -> list[Configuration]:
        """Return the candidate pool for ``(workload, round_index)``.

        Workload-agnostic generators ignore the workload and delegate to
        :meth:`propose`; rank-stable generators key their RNG stream on it.
        ``engine`` may be a full :class:`CampaignEngine` or the light
        :class:`ProposalContext` the parallel runtime ships to workers.
        """
        return self.propose(engine, surrogate, round_index)

    def proposer_for(
        self, workload: Optional[str], round_index: int
    ) -> "CandidateGenerator":
        """The generator that actually proposes for ``(workload, round)``.

        Plain generators return themselves; :class:`~repro.dse.portfolio.
        StrategyPortfolio` returns the bandit-selected arm so the parallel
        runtime can ship only that arm (not the mutable bandit state) to
        worker processes.
        """
        return self

    def observe_round(
        self, workload: str, round_index: int, tracker: "QualityTracker"
    ) -> None:
        """Hook called after *tracker* records ``(workload, round_index)``.

        The default is a no-op; the strategy portfolio uses it to fold the
        round's quality slope into its bandit state.  Callers must invoke it
        in round order, once per ``(workload, round)``.
        """


@dataclass
class ProposalContext:
    """The slice of :class:`CampaignEngine` that candidate generation needs.

    The parallel campaign runtime proposes pools inside worker jobs; shipping
    the full engine would drag the simulator through pickling, so workers get
    this context instead.  It duck-types the engine attributes every
    generator's :meth:`~CandidateGenerator.propose_for` touches (``space``,
    ``objectives``, ``encoder``; ``sampler`` stays ``None`` because only
    rank-stable generators — which never touch the shared stream — run
    through the per-workload-pool path).
    """

    space: DesignSpace
    objectives: ObjectiveSet
    encoder: OrdinalEncoder
    sampler: Optional[BaseSampler] = None


class RandomPool(CandidateGenerator):
    """Uniform random candidate pool (the classic screening pool).

    By default every proposal draws from the engine's shared sampler stream
    (or an explicit ``sampler=``), so successive rounds and workloads see
    fresh but order-dependent pools.  With ``seed=`` the generator instead
    draws each pool from a keyed per-``(workload, round)`` stream derived
    from that seed — a pure function of ``(seed, workload, round_index)``,
    which makes it :attr:`~CandidateGenerator.rank_stable` and eligible as a
    strategy-portfolio arm.
    """

    def __init__(
        self,
        size: int,
        *,
        sampler: Optional[BaseSampler] = None,
        seed: SeedLike = None,
    ) -> None:
        from repro.utils.rng import seed_entropy

        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if seed is not None and sampler is not None:
            raise ValueError("pass either seed= (keyed streams) or sampler=, not both")
        self.size = size
        self.sampler = sampler
        self.seed_entropy = None if seed is None else seed_entropy(seed)
        self.rank_stable = self.seed_entropy is not None

    def fingerprint(self) -> str:
        """Checkpoint descriptor: every knob that changes the proposals."""
        mode = (
            "shared-stream"
            if self.seed_entropy is None
            else f"entropy={self.seed_entropy}"
        )
        return f"RandomPool(size={self.size}, {mode})"

    def _pool_sampler(
        self,
        engine: "CampaignEngine",
        workload: Optional[str],
        round_index: int,
    ) -> BaseSampler:
        if self.seed_entropy is not None:
            from repro.utils.rng import keyed_rng

            return RandomSampler(
                engine.space,
                seed=keyed_rng(
                    self.seed_entropy,
                    workload if workload is not None else "",
                    round_index,
                ),
            )
        return self.sampler if self.sampler is not None else engine.sampler

    def propose(
        self,
        engine: "CampaignEngine",
        surrogate: Optional[MultiObjectiveSurrogate],
        round_index: int,
    ) -> list[Configuration]:
        return self._pool_sampler(engine, None, round_index).sample(self.size)

    def propose_for(
        self,
        engine: "CampaignEngine",
        surrogate: Optional[MultiObjectiveSurrogate],
        workload: Optional[str],
        round_index: int,
    ) -> list[Configuration]:
        return self._pool_sampler(engine, workload, round_index).sample(self.size)


class FocusedPool(CandidateGenerator):
    """Attention-guided pruned candidate pool (``docs/pruning.md``).

    Samples each round's pool through a
    :class:`~repro.designspace.sampling.FocusedSampler` built from a
    per-parameter importance profile, so the budget lands on the parameters
    the surrogates' attention says matter.  The profile comes from one of
    two sources, checked in order:

    1. **live refocus** (``refocus=True``, the default): when the round's
       surrogate exposes ``attention_profile(features)`` (e.g.
       :class:`~repro.dse.surrogates.StackedPredictorSurrogate`), a fixed
       probe pool (``probe_size`` configurations from a private
       ``probe_seed`` stream) is encoded and profiled, so the focus tracks
       the surrogate as it refits between rounds;
    2. **fixed profile**: the ``profile=`` passed at construction — an
       :class:`~repro.meta.wam.ImportanceProfile` or raw score array.  This
       is the form the shared-pool / runtime campaign paths use (propose is
       called with ``surrogate=None`` there), which keeps the generator
       surrogate-independent and therefore eligible for the shared pool,
       DAG scheduling, and checkpoint resume.

    ``keep_fraction=1.0`` skips profiling entirely and draws from the
    engine's sampler exactly like :class:`RandomPool` — **bitwise**, the
    repository's standard fast-path equivalence (pinned by
    ``tests/test_dse_pruning.py``).  ``fingerprint()`` feeds the runtime's
    checkpoint descriptor so resuming with different focus knobs is
    rejected instead of silently diverging.

    As with :class:`RandomPool`, passing ``seed=`` switches pool sampling
    to keyed per-``(workload, round)`` streams, making the generator
    :attr:`~CandidateGenerator.rank_stable` (portfolio-arm eligible).
    """

    def __init__(
        self,
        size: int,
        *,
        keep_fraction: float = 1.0,
        coarse_levels: int = 1,
        profile=None,
        probe_size: int = 64,
        probe_seed: SeedLike = 0,
        refocus: bool = True,
        sampler: Optional[BaseSampler] = None,
        seed: SeedLike = None,
    ) -> None:
        from repro.utils.rng import seed_entropy

        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(
                f"keep_fraction must be in (0, 1], got {keep_fraction}"
            )
        if coarse_levels < 1:
            raise ValueError(f"coarse_levels must be >= 1, got {coarse_levels}")
        if probe_size < 1:
            raise ValueError(f"probe_size must be >= 1, got {probe_size}")
        if seed is not None and sampler is not None:
            raise ValueError("pass either seed= (keyed streams) or sampler=, not both")
        self.size = size
        self.keep_fraction = float(keep_fraction)
        self.coarse_levels = int(coarse_levels)
        self.profile = profile
        self.probe_size = int(probe_size)
        self.probe_seed = probe_seed
        self.refocus = bool(refocus)
        self.sampler = sampler
        self.seed_entropy = None if seed is None else seed_entropy(seed)
        self.rank_stable = self.seed_entropy is not None

    def fingerprint(self) -> str:
        """Checkpoint descriptor: every knob that changes the proposals."""
        mode = (
            "shared-stream"
            if self.seed_entropy is None
            else f"entropy={self.seed_entropy}"
        )
        return (
            f"FocusedPool(size={self.size}, "
            f"keep_fraction={self.keep_fraction}, "
            f"coarse_levels={self.coarse_levels}, "
            f"probe_size={self.probe_size}, refocus={self.refocus}, {mode})"
        )

    def _scores(
        self,
        engine: "CampaignEngine",
        surrogate: Optional[MultiObjectiveSurrogate],
    ):
        if (
            self.refocus
            and surrogate is not None
            and hasattr(surrogate, "attention_profile")
        ):
            probe = RandomSampler(engine.space, seed=self.probe_seed).sample(
                self.probe_size
            )
            return surrogate.attention_profile(engine.encoder.encode_batch(probe))
        if self.profile is not None:
            return self.profile
        raise ValueError(
            "FocusedPool with keep_fraction < 1.0 needs an importance source: "
            "pass profile=... at construction, or propose with a surrogate "
            "exposing attention_profile() and refocus=True"
        )

    def propose(
        self,
        engine: "CampaignEngine",
        surrogate: Optional[MultiObjectiveSurrogate],
        round_index: int,
    ) -> list[Configuration]:
        return self.propose_for(engine, surrogate, None, round_index)

    def propose_for(
        self,
        engine: "CampaignEngine",
        surrogate: Optional[MultiObjectiveSurrogate],
        workload: Optional[str],
        round_index: int,
    ) -> list[Configuration]:
        if self.seed_entropy is not None:
            from repro.utils.rng import keyed_rng

            # Keyed mode: a fresh stream per (workload, round) — the scores
            # themselves are already deterministic (fixed profile, or a probe
            # drawn from the private probe_seed stream).
            rng = keyed_rng(
                self.seed_entropy,
                workload if workload is not None else "",
                round_index,
            )
            if self.keep_fraction >= 1.0:
                return RandomSampler(engine.space, seed=rng).sample(self.size)
            focused = FocusedSampler(
                engine.space,
                self._scores(engine, surrogate),
                keep_fraction=self.keep_fraction,
                coarse_levels=self.coarse_levels,
                seed=rng,
            )
            return focused.sample(self.size)
        sampler = self.sampler if self.sampler is not None else engine.sampler
        if self.keep_fraction >= 1.0:
            # Degenerate focus: consume the shared stream exactly like
            # RandomPool so existing campaigns reproduce bitwise.
            return sampler.sample(self.size)
        focused = FocusedSampler(
            engine.space,
            self._scores(engine, surrogate),
            keep_fraction=self.keep_fraction,
            coarse_levels=self.coarse_levels,
            seed=sampler.rng,
        )
        return focused.sample(self.size)


def screen_predict(
    surrogate: MultiObjectiveSurrogate,
    features: np.ndarray,
    tile_size: Optional[int] = None,
) -> np.ndarray:
    """Screen a candidate pool in blocks of ``tile_size`` rows.

    With ``tile_size=None`` (or a tile at least the pool size) this is
    exactly ``surrogate.predict(features)``.  Otherwise the pool is
    predicted block by block and the rows are assembled in place, so the
    surrogate never materialises pool-sized intermediates — the knob that
    closes the memory-bound screening regime for stacked nn surrogates
    over large pools.

    Every surrogate in this repository predicts rows independently (trees
    predict per row; :class:`~repro.dse.surrogates.StackedPredictorSurrogate`
    runs its stacked forward under the slice-stable kernels of
    :mod:`repro.nn.parallel`), so the blocked screen is **bitwise
    identical** to the unblocked one for every tile size — pinned by
    ``tests/test_dse_engine_equivalence.py``.
    """
    n_rows = len(features)
    if tile_size is None or tile_size >= n_rows:
        return surrogate.predict(features)
    if tile_size < 1:
        raise ValueError(f"tile_size must be >= 1, got {tile_size}")
    predicted: Optional[np.ndarray] = None
    for start in range(0, n_rows, tile_size):
        block = surrogate.predict(features[start : start + tile_size])
        if predicted is None:
            predicted = np.empty((n_rows,) + block.shape[1:], dtype=block.dtype)
        predicted[start : start + len(block)] = block
    return predicted


class _SharedPrediction:
    """Memoize one surrogate call per unique feature matrix (by identity).

    :class:`~repro.dse.nsga2.NSGA2Explorer` evaluates per-objective
    callables against the same feature matrix object; caching on identity
    turns its m surrogate calls per generation into one batched call.
    """

    def __init__(self, surrogate: MultiObjectiveSurrogate) -> None:
        self.surrogate = surrogate
        self._features: Optional[np.ndarray] = None
        self._predicted: Optional[np.ndarray] = None

    def column(self, index: int) -> Callable[[np.ndarray], np.ndarray]:
        def predict(features: np.ndarray) -> np.ndarray:
            if self._features is not features:
                self._predicted = self.surrogate.predict(features)
                self._features = features
            return self._predicted[:, index]

        return predict


class NSGA2Evolve(CandidateGenerator):
    """Evolve the candidate pool with NSGA-II over the surrogate.

    Reuses :class:`~repro.dse.nsga2.NSGA2Explorer` wholesale; the final
    population (already concentrated around the predicted front) becomes
    the screening pool.  The RNG plumbing has two modes:

    * **keyed streams** (``seed`` is an int / ``SeedSequence`` / ``None``,
      the default): every proposal evolves from a fresh generator keyed on
      ``(seed, workload, round_index)``, so the pool for one workload-round
      is a pure function of those three values — invariant to the executor,
      the shard count, and any evolution already run for other workloads.
      This is the :attr:`~CandidateGenerator.rank_stable` mode the parallel
      campaign runtime and the strategy portfolio require;
    * **shared stream** (``seed`` is an existing ``numpy`` ``Generator``):
      every proposal continues the caller's mutable stream, preserving the
      pre-portfolio behaviour :class:`~repro.dse.explorer.
      NSGA2GuidedExplorer` pins bitwise (it deliberately shares its
      sampler's stream).  Order-dependent, hence not rank-stable.
    """

    surrogate_dependent = True

    def __init__(
        self,
        *,
        population_size: int = 64,
        generations: int = 20,
        seed: SeedLike = 0,
        **nsga2_kwargs,
    ) -> None:
        from repro.utils.rng import seed_entropy

        self.population_size = population_size
        self.generations = generations
        self.nsga2_kwargs = nsga2_kwargs
        if isinstance(seed, np.random.Generator):
            self.seed_entropy = None
            self.rng: Optional[np.random.Generator] = seed
        else:
            self.seed_entropy = seed_entropy(seed)
            self.rng = None
        self.rank_stable = self.seed_entropy is not None

    def fingerprint(self) -> str:
        """Checkpoint descriptor: every knob that changes the proposals."""
        mode = (
            "shared-stream"
            if self.seed_entropy is None
            else f"entropy={self.seed_entropy}"
        )
        extras = "".join(
            f", {key}={self.nsga2_kwargs[key]!r}" for key in sorted(self.nsga2_kwargs)
        )
        return (
            f"NSGA2Evolve(population_size={self.population_size}, "
            f"generations={self.generations}, {mode}{extras})"
        )

    def _evolve(
        self,
        engine: "CampaignEngine",
        surrogate: MultiObjectiveSurrogate,
        rng: np.random.Generator,
    ) -> list[Configuration]:
        from repro.dse.nsga2 import NSGA2Explorer

        shared = _SharedPrediction(surrogate)
        predictors = {
            name: shared.column(column)
            for column, name in enumerate(engine.objectives.names)
        }
        explorer = NSGA2Explorer(
            engine.space,
            population_size=self.population_size,
            generations=self.generations,
            seed=rng,
            **self.nsga2_kwargs,
        )
        result = explorer.explore(
            predictors,
            maximize=dict(zip(engine.objectives.names, engine.objectives.maximize)),
        )
        return result.configs

    def propose(
        self,
        engine: "CampaignEngine",
        surrogate: Optional[MultiObjectiveSurrogate],
        round_index: int,
    ) -> list[Configuration]:
        return self.propose_for(engine, surrogate, None, round_index)

    def propose_for(
        self,
        engine: "CampaignEngine",
        surrogate: Optional[MultiObjectiveSurrogate],
        workload: Optional[str],
        round_index: int,
    ) -> list[Configuration]:
        if surrogate is None:
            raise ValueError("NSGA2Evolve needs a surrogate to evolve against")
        if self.seed_entropy is None:
            rng = self.rng
        else:
            from repro.utils.rng import keyed_rng

            rng = keyed_rng(
                self.seed_entropy,
                workload if workload is not None else "",
                round_index,
            )
        return self._evolve(engine, surrogate, rng)


# -- quality tracking ------------------------------------------------------------
@dataclass
class CampaignRound:
    """Measured-front snapshot after one acquisition round."""

    round_index: int
    simulations_total: int
    pareto_size: int
    hypervolume: float
    #: Monte-Carlo sample count behind ``hypervolume`` (``0`` = exact 2-D
    #: sweep, or no indicator at all when ``hypervolume`` is NaN).
    hypervolume_samples: int = 0
    #: Free-form strategy annotations — the strategy portfolio records the
    #: bandit-selected arm name under ``"arm"`` (``docs/portfolio.md``).
    extras: dict = field(default_factory=dict)


def front_hypervolume(
    measured_min: np.ndarray, front_indices: Optional[np.ndarray] = None
) -> float:
    """Hypervolume of the measured front w.r.t. a nadir + 10 % margin point.

    Only defined for two objectives; callers must handle other arities
    (:class:`QualityTracker` warns and records NaN).  *front_indices* lets
    a caller that already computed the Pareto front pass it in instead of
    recomputing it.
    """
    if front_indices is None:
        front_indices = fast_pareto_front(measured_min)
    front = measured_min[front_indices]
    nadir = measured_min.max(axis=0)
    span = np.maximum(measured_min.max(axis=0) - measured_min.min(axis=0), 1e-12)
    reference = nadir + 0.1 * span
    return hypervolume_2d(front, reference)


class QualityTracker:
    """Per-round front-size / hypervolume bookkeeping shared by all loops.

    The hypervolume indicator is the exact two-objective area (IPC vs
    power) when the campaign has two objectives; for **three or more**
    objectives (e.g. ipc/power/area) it records a seeded Monte-Carlo
    estimate (:func:`repro.dse.quality.monte_carlo_hypervolume`) and notes
    the sample count in :attr:`CampaignRound.hypervolume_samples` so the
    number is never mistaken for an exact sweep.  A single-objective
    campaign has no hypervolume trade-off at all: the tracker emits a
    ``RuntimeWarning`` once and records ``NaN`` — never a silent ``0.0``,
    which the pre-engine active-learning loop used to report and which is
    indistinguishable from "found nothing".  See the scope note in
    ``docs/benchmarks.md``.
    """

    def __init__(
        self, objectives: ObjectiveSet, *, mc_samples: Optional[int] = None
    ) -> None:
        from repro.dse.quality import MC_HYPERVOLUME_SAMPLES

        self.objectives = objectives
        #: Samples per Monte-Carlo estimate for 3+-objective campaigns.
        self.mc_samples = mc_samples if mc_samples is not None else MC_HYPERVOLUME_SAMPLES
        self.rounds: list[CampaignRound] = []
        #: Pareto indices of the most recently recorded round (reused by the
        #: engine for the final result instead of recomputing the front).
        self.last_front_indices: Optional[np.ndarray] = None
        self._warned = False

    def hypervolume(
        self, measured_min: np.ndarray, front_indices: Optional[np.ndarray] = None
    ) -> float:
        """Hypervolume indicator alone; see :meth:`hypervolume_entry`."""
        return self.hypervolume_entry(measured_min, front_indices)[0]

    def hypervolume_entry(
        self, measured_min: np.ndarray, front_indices: Optional[np.ndarray] = None
    ) -> tuple[float, int]:
        """``(hypervolume, mc_samples)`` for one round's measured set.

        ``mc_samples`` is ``0`` for the exact 2-D sweep and for the
        single-objective NaN case.
        """
        num_objectives = measured_min.shape[1]
        if num_objectives == 2:
            return front_hypervolume(measured_min, front_indices), 0
        if num_objectives >= 3:
            from repro.dse.quality import monte_carlo_hypervolume

            if front_indices is None:
                front_indices = fast_pareto_front(measured_min)
            nadir = measured_min.max(axis=0)
            span = np.maximum(nadir - measured_min.min(axis=0), 1e-12)
            estimate = monte_carlo_hypervolume(
                measured_min[front_indices],
                nadir + 0.1 * span,
                num_samples=self.mc_samples,
                seed=0,
            )
            return estimate, self.mc_samples
        if not self._warned:
            warnings.warn(
                f"hypervolume tracking is only defined for 2 objectives "
                f"(exactly) or 3+ (Monte-Carlo estimate), got "
                f"{num_objectives} ({', '.join(self.objectives.names)}); "
                f"recording NaN",
                RuntimeWarning,
                stacklevel=3,
            )
            self._warned = True
        return float("nan"), 0

    def record(self, round_index: int, measured_min: np.ndarray, simulations_total: int) -> CampaignRound:
        front_indices = fast_pareto_front(measured_min)
        self.last_front_indices = front_indices
        hypervolume, samples = self.hypervolume_entry(measured_min, front_indices)
        entry = CampaignRound(
            round_index=round_index,
            simulations_total=simulations_total,
            pareto_size=int(len(front_indices)),
            hypervolume=hypervolume,
            hypervolume_samples=samples,
        )
        self.rounds.append(entry)
        return entry


# -- results -------------------------------------------------------------------
@dataclass
class WorkloadCampaignResult:
    """Outcome of one workload's exploration within a campaign."""

    workload: str
    objectives: ObjectiveSet
    #: Configurations with measurements on this workload.
    simulated_configs: list[Configuration]
    #: Measured objective matrix (rows follow ``simulated_configs``).
    measured_objectives: np.ndarray
    #: Indices (into ``simulated_configs``) of the measured Pareto front.
    pareto_indices: np.ndarray
    #: Simulator invocations attributed to this workload.
    simulations_used: int
    #: Candidate-pool size screened by the surrogate.
    candidates_screened: int
    #: Per-round quality snapshots (empty when tracking is off).
    rounds: list[CampaignRound] = field(default_factory=list)
    #: Indices of this workload's acquisition picks.  For a single-workload
    #: :meth:`CampaignEngine.run` these index the *last candidate pool*; for
    #: a shared-pool campaign they index ``simulated_configs`` (which then
    #: holds the measured selection union).
    selected_indices: list[int] = field(default_factory=list)
    #: Surrogate predictions for the last screened pool (original sense).
    predicted: Optional[np.ndarray] = None

    @property
    def objective_names(self) -> tuple[str, ...]:
        return self.objectives.names

    @property
    def pareto_configs(self) -> list[Configuration]:
        """The measured-Pareto-optimal configurations."""
        return [self.simulated_configs[int(i)] for i in self.pareto_indices]

    @property
    def pareto_objectives(self) -> np.ndarray:
        """Objective rows of the measured Pareto front."""
        return self.measured_objectives[self.pareto_indices]

    def hypervolume_history(self) -> list[float]:
        """Hypervolume after each round (budget/quality curve)."""
        return [entry.hypervolume for entry in self.rounds]


@dataclass
class CampaignResult:
    """Outcome of a cross-workload campaign: one front per workload."""

    per_workload: dict[str, WorkloadCampaignResult]
    objectives: ObjectiveSet
    #: Size of the (shared) candidate pool screened per workload.
    candidates_screened: int
    #: Total simulator invocations across all workloads.
    total_simulations: int

    @property
    def workloads(self) -> list[str]:
        return list(self.per_workload)

    def __getitem__(self, workload: str) -> WorkloadCampaignResult:
        return self.per_workload[workload]

    def __iter__(self):
        return iter(self.per_workload.values())

    def hypervolume_curves(self) -> dict[str, list[float]]:
        """Per-workload hypervolume-per-round curves."""
        return {
            name: result.hypervolume_history()
            for name, result in self.per_workload.items()
        }

    def summary(self) -> dict:
        """JSON-serialisable campaign report (used by the ``dse`` CLI)."""
        report: dict = {
            "objectives": list(self.objectives.names),
            "maximize": list(self.objectives.maximize),
            "candidates_screened": self.candidates_screened,
            "total_simulations": self.total_simulations,
            "workloads": {},
        }
        for name, result in self.per_workload.items():
            front = [
                dict(zip(result.objective_names, (float(v) for v in row)))
                for row in result.pareto_objectives
            ]
            report["workloads"][name] = {
                "simulations": result.simulations_used,
                "front_size": int(len(result.pareto_indices)),
                "pareto_front": front,
                "hypervolume_curve": [
                    float(v) for v in result.hypervolume_history()
                ],
            }
        return report


#: Surrogates for a campaign: one per workload, or a factory from name.
SurrogateProvider = Union[
    Mapping[str, MultiObjectiveSurrogate],
    Callable[[str], MultiObjectiveSurrogate],
]


# -- the engine --------------------------------------------------------------------
class CampaignEngine:
    """Shared generate/screen/simulate/record core for all DSE loops.

    ``screen_tile`` streams every screening step through
    :func:`screen_predict` in blocks of that many candidates (``None`` =
    screen the whole pool at once); the blocked screen is bitwise
    identical to the unblocked one.
    """

    def __init__(
        self,
        space: DesignSpace,
        simulator: Simulator,
        objectives: ObjectiveSet,
        *,
        seed: SeedLike = 0,
        sampler: Optional[BaseSampler] = None,
        encoder: Optional[OrdinalEncoder] = None,
        screen_tile: Optional[int] = None,
    ) -> None:
        self.space = space
        self.simulator = simulator
        self.objectives = objectives
        self.sampler = sampler if sampler is not None else RandomSampler(space, seed=seed)
        self.encoder = encoder if encoder is not None else OrdinalEncoder(space)
        if screen_tile is not None and int(screen_tile) < 1:
            raise ValueError(f"screen_tile must be >= 1, got {screen_tile}")
        self.screen_tile = None if screen_tile is None else int(screen_tile)

    # -- shared bookkeeping ----------------------------------------------------
    def measure(
        self, configs: Sequence[Configuration], workload: str
    ) -> np.ndarray:
        """Simulate *configs* on *workload*: one vectorized batch call.

        Returns the ``(n, m)`` measured objective matrix in declaration
        order (``BatchSimulationResult.objective`` resolves the
        dataset-layer alias ``"power"``).
        """
        batch = self.simulator.run_batch(list(configs), workload)
        return np.stack(
            [batch.objective(name) for name in self.objectives.names], axis=1
        )

    # -- single-workload loop ----------------------------------------------------
    def run(
        self,
        workload: str,
        surrogate: MultiObjectiveSurrogate,
        *,
        generator: CandidateGenerator,
        acquisition: Optional[AcquisitionStrategy] = None,
        simulation_budget: int,
        rounds: int = 1,
        initial_samples: int = 0,
        refit: bool = False,
        track_quality: bool = True,
    ) -> WorkloadCampaignResult:
        """Run one workload's generate/screen/simulate loop.

        Parameters
        ----------
        workload:
            Target workload name.
        surrogate:
            Multi-objective surrogate answering every objective per
            candidate.
        generator, acquisition:
            The candidate-generation and budget-allocation strategies
            (default acquisition: :class:`ParetoRankAcquisition`).
        simulation_budget:
            Simulations per acquisition round.
        rounds, initial_samples, refit:
            ``rounds=1, initial_samples=0, refit=False`` is the single-shot
            screen-then-simulate loop; ``rounds=r, initial_samples=k,
            refit=True`` is the active simulate/train/refine loop (the
            surrogate is refit on all measurements before each round).
        track_quality:
            Record a :class:`CampaignRound` (front size, hypervolume) after
            every acquisition round.
        """
        if simulation_budget < 1:
            raise ValueError("simulation_budget must be >= 1")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if initial_samples < 0:
            raise ValueError("initial_samples must be >= 0")
        if refit and not surrogate.supports_fit:
            raise ValueError(
                f"refit=True needs a refittable surrogate, "
                f"{type(surrogate).__name__} is not"
            )
        if refit and initial_samples < 2:
            raise ValueError("refit=True needs initial_samples >= 2 to fit on")
        acquisition = acquisition if acquisition is not None else ParetoRankAcquisition()

        simulated: list[Configuration] = []
        measured = np.empty((0, self.objectives.num_objectives), dtype=np.float64)
        if initial_samples:
            initial = self.sampler.sample(initial_samples)
            measured = self.measure(initial, workload)
            simulated.extend(initial)

        tracker = QualityTracker(self.objectives) if track_quality else None
        candidates_screened = 0
        last_selected: list[int] = []
        last_predicted: Optional[np.ndarray] = None

        for round_index in range(rounds):
            with obs.span("campaign.round", workload=workload, round=round_index):
                obs.add_counter("campaign.rounds", 1)
                known_features = (
                    self.encoder.encode_batch(simulated) if simulated else None
                )
                if refit:
                    with obs.span(
                        "campaign.refit", workload=workload, round=round_index
                    ):
                        surrogate.fit(known_features, measured)

                with obs.span(
                    "campaign.propose", workload=workload, round=round_index
                ):
                    candidates = generator.propose_for(
                        self, surrogate, workload, round_index
                    )
                features = self.encoder.encode_batch(candidates)
                with obs.span(
                    "campaign.screen",
                    workload=workload,
                    round=round_index,
                    candidates=len(candidates),
                ):
                    predicted = screen_predict(surrogate, features, self.screen_tile)
                predicted_min = self.objectives.to_minimization(predicted)
                context = AcquisitionContext(
                    features=features,
                    known_features=known_features,
                    surrogate=surrogate,
                    objectives=self.objectives,
                )
                with obs.span(
                    "campaign.select", workload=workload, budget=simulation_budget
                ):
                    selected = acquisition.select(
                        predicted_min, simulation_budget, context
                    )

                chosen = [candidates[i] for i in selected]
                with obs.span("campaign.measure", configs=len(chosen)):
                    rows = self.measure(chosen, workload)
                simulated.extend(chosen)
                measured = np.concatenate([measured, rows], axis=0)

                candidates_screened += len(candidates)
                last_selected = selected
                last_predicted = predicted
                if tracker is not None:
                    entry = tracker.record(
                        round_index,
                        self.objectives.to_minimization(measured),
                        len(simulated),
                    )
                    arm_for = getattr(generator, "arm_for", None)
                    if arm_for is not None:
                        entry.extras["arm"] = arm_for(workload, round_index)
                    quality = {
                        "workload": workload,
                        "round": round_index,
                        "hypervolume": entry.hypervolume,
                        "pareto": entry.pareto_size,
                        "simulations": entry.simulations_total,
                    }
                    if "arm" in entry.extras:
                        quality["arm"] = entry.extras["arm"]
                    obs.event("campaign.quality", **quality)
                    generator.observe_round(workload, round_index, tracker)

        measured_min = self.objectives.to_minimization(measured)
        # The tracker already computed the final front when it recorded the
        # last round; only the untracked path has to compute it here.
        pareto_indices = (
            tracker.last_front_indices
            if tracker is not None and tracker.last_front_indices is not None
            else fast_pareto_front(measured_min)
        )
        return WorkloadCampaignResult(
            workload=workload,
            objectives=self.objectives,
            simulated_configs=simulated,
            measured_objectives=measured,
            pareto_indices=pareto_indices,
            simulations_used=len(simulated),
            candidates_screened=candidates_screened,
            rounds=tracker.rounds if tracker is not None else [],
            selected_indices=last_selected,
            predicted=last_predicted,
        )

    # -- cross-workload campaign ---------------------------------------------------
    def run_campaign(
        self,
        workloads: Sequence[str],
        surrogates: SurrogateProvider,
        *,
        generator: Optional[CandidateGenerator] = None,
        acquisition: Optional[AcquisitionStrategy] = None,
        candidate_pool: int = 1000,
        simulation_budget: int = 20,
        rounds: int = 1,
        initial_samples: int = 0,
        refit: bool = False,
        executor=None,
        checkpoint=None,
    ) -> CampaignResult:
        """Explore many workloads in one batched campaign.

        With a surrogate-independent generator and a single round (the
        default), the campaign runs the **shared-pool** fast path: one
        candidate pool is sampled and encoded once, every workload screens
        it with its own surrogate, and the union of all per-workload
        selections is measured with a single
        :meth:`~repro.sim.simulator.Simulator.run_sweep` (configurations
        encoded once for all workloads; an opt-in
        ``Simulator(evaluation_cache=True)`` then makes overlapping or
        repeated selections free).  Every workload's result contains the
        full measured union — measurements made for one workload's picks
        are valid (and freely available) observations for the others — with
        its own acquisition picks recorded in ``selected_indices``.

        Multi-round / refitting / surrogate-dependent-generator campaigns
        fall back to per-workload :meth:`run` loops, which still share the
        simulator's phase tables and evaluation cache.  Rank-stable
        generators (seeded pools, ``NSGA2Evolve``, ``StrategyPortfolio``)
        never fall back: they always run the runtime's per-workload-pool
        rounds — on a :class:`~repro.runtime.executors.SerialExecutor`
        when no executor is given — so ``executor``/``jobs`` change
        throughput but never the campaign outcome.

        With an *executor* (:mod:`repro.runtime.executors`) and/or a
        *checkpoint* path, the campaign is dispatched through the parallel
        campaign runtime instead (:mod:`repro.runtime.campaign`): each
        round's per-workload screen steps become DAG jobs joined by a
        sharded union-measure sweep, completed rounds are checkpointed so
        a killed campaign resumes from the last completed round, and the
        results are **bitwise identical** to the
        :class:`~repro.runtime.executors.SerialExecutor` reference (which
        itself reproduces the single-round shared-pool path exactly).
        Multi-round/refit campaigns keep the shared-pool-per-round
        structure there instead of falling back to per-workload loops.
        Rank-stable generators (seeded pools, ``NSGA2Evolve``,
        :class:`~repro.dse.portfolio.StrategyPortfolio`) run the runtime's
        per-workload-pool mode instead — pools proposed inside the screen
        jobs from keyed pure RNG streams; surrogate-dependent generators
        that are *not* rank-stable are rejected there.
        """
        if (
            executor is None
            and checkpoint is None
            and generator is not None
            and generator.rank_stable
        ):
            # Rank-stable generators define their campaign semantics on the
            # runtime's per-workload-pool rounds (keyed pools, union
            # measure — docs/portfolio.md): run them there even without an
            # executor, so `jobs=N` changes throughput but never the
            # outcome.
            from repro.runtime.executors import SerialExecutor

            executor = SerialExecutor()
        if executor is not None or checkpoint is not None:
            from repro.runtime.campaign import run_campaign_runtime

            return run_campaign_runtime(
                self,
                workloads,
                surrogates,
                generator=generator,
                acquisition=acquisition,
                candidate_pool=candidate_pool,
                simulation_budget=simulation_budget,
                rounds=rounds,
                initial_samples=initial_samples,
                refit=refit,
                executor=executor,
                checkpoint=checkpoint,
            )
        workloads = list(workloads)
        if not workloads:
            raise ValueError("run_campaign needs at least one workload")
        surrogate_for: Callable[[str], MultiObjectiveSurrogate]
        if callable(surrogates):
            surrogate_for = surrogates
        else:
            surrogate_for = surrogates.__getitem__
        acquisition = acquisition if acquisition is not None else ParetoRankAcquisition()

        shared_pool = (
            rounds == 1
            and initial_samples == 0
            and not refit
            and (generator is None or not generator.surrogate_dependent)
        )
        if not shared_pool:
            if generator is None:
                generator = RandomPool(candidate_pool)
            per_workload = {
                workload: self.run(
                    workload,
                    surrogate_for(workload),
                    generator=generator,
                    acquisition=acquisition,
                    simulation_budget=simulation_budget,
                    rounds=rounds,
                    initial_samples=initial_samples,
                    refit=refit,
                )
                for workload in workloads
            }
            return CampaignResult(
                per_workload=per_workload,
                objectives=self.objectives,
                candidates_screened=next(iter(per_workload.values())).candidates_screened,
                total_simulations=sum(
                    result.simulations_used for result in per_workload.values()
                ),
            )

        if generator is None:
            generator = RandomPool(candidate_pool)
        candidates = generator.propose(self, None, 0)
        features = self.encoder.encode_batch(candidates)

        selections: dict[str, list[int]] = {}
        predictions: dict[str, np.ndarray] = {}
        for workload in workloads:
            surrogate = surrogate_for(workload)
            with obs.span(
                "campaign.screen", workload=workload, candidates=len(candidates)
            ):
                predicted = screen_predict(surrogate, features, self.screen_tile)
            predicted_min = self.objectives.to_minimization(predicted)
            context = AcquisitionContext(
                features=features,
                known_features=None,
                surrogate=surrogate,
                objectives=self.objectives,
            )
            selections[workload] = acquisition.select(
                predicted_min, simulation_budget, context
            )
            predictions[workload] = predicted

        union = sorted({index for picks in selections.values() for index in picks})
        position = {index: offset for offset, index in enumerate(union)}
        union_configs = [candidates[index] for index in union]
        sweep = self.simulator.run_sweep(union_configs, workloads)

        per_workload = {}
        for workload in workloads:
            batch = sweep[workload]
            measured = np.stack(
                [batch.objective(name) for name in self.objectives.names], axis=1
            )
            measured_min = self.objectives.to_minimization(measured)
            tracker = QualityTracker(self.objectives)
            entry = tracker.record(0, measured_min, len(union_configs))
            obs.event(
                "campaign.quality",
                workload=workload,
                round=0,
                hypervolume=entry.hypervolume,
                pareto=entry.pareto_size,
                simulations=entry.simulations_total,
            )
            per_workload[workload] = WorkloadCampaignResult(
                workload=workload,
                objectives=self.objectives,
                simulated_configs=union_configs,
                measured_objectives=measured,
                pareto_indices=tracker.last_front_indices,
                simulations_used=len(union_configs),
                candidates_screened=len(candidates),
                rounds=tracker.rounds,
                selected_indices=[position[index] for index in selections[workload]],
                predicted=predictions[workload],
            )
        return CampaignResult(
            per_workload=per_workload,
            objectives=self.objectives,
            candidates_screened=len(candidates),
            total_simulations=len(union_configs) * len(workloads),
        )
