"""Multi-objective surrogates for the DSE campaign engine.

A campaign explores a trade-off between several objectives (IPC, power,
energy, ...), but the prediction models in this repository are all
single-output: an adapted :class:`~repro.nn.transformer.TransformerPredictor`
or a tree :class:`~repro.baselines.base.Regressor` answers one metric.  A
:class:`MultiObjectiveSurrogate` bundles one model per objective behind a
single ``predict(features) -> (n, m)`` call so the engine never iterates
over objectives itself:

* :class:`CallableSurrogate` — wraps the legacy ``{name: features ->
  predictions}`` mapping the original explorers accepted; one call per
  objective (the compatibility path);
* :class:`TreeEnsembleSurrogate` — owns one tree regressor per objective
  with a vectorized fit/predict loop; the active-learning loop refits it
  every round;
* :class:`StackedPredictorSurrogate` — stacks the parameters of several
  architecture-identical nn predictors on a leading axis and answers *all*
  objectives for a candidate pool in **one** batched functional forward
  (the same stacked-parameter machinery the task-batched MAML inner loop
  uses), falling back to a per-predictor loop when the models are not
  stackable.

Exploration bonuses (ensemble disagreement for forests, distance to the
already-simulated set otherwise) live here too, blended across *all*
objective surrogates so e.g. power-side uncertainty drives acquisition as
much as IPC-side uncertainty.
"""

from __future__ import annotations

import abc
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.baselines.base import Regressor
from repro.nn import parallel as nn_parallel
from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerPredictor

#: Signature of a legacy surrogate callable: features (n, d) -> predictions (n,).
PredictorFn = Callable[[np.ndarray], np.ndarray]

#: Factory returning a fresh regressor for one objective.
RegressorFactory = Callable[[], Regressor]


def distance_to_known(features: np.ndarray, known_features: np.ndarray) -> np.ndarray:
    """Euclidean distance of every candidate to its closest known point."""
    return np.min(
        np.linalg.norm(features[:, None, :] - known_features[None, :, :], axis=2), axis=1
    )


def regressor_exploration_bonus(
    surrogate, features: np.ndarray, known_features: np.ndarray
) -> np.ndarray:
    """Disagreement of a forest's trees, or distance to the known set.

    With nothing simulated yet (an empty known set) the distance fallback
    is undefined; every candidate is equally unexplored, so the bonus is
    zero — matching :meth:`MultiObjectiveSurrogate.exploration_bonus`.
    """
    trees = getattr(surrogate, "trees_", None)
    if trees:
        member_predictions = np.stack([tree.predict(features) for tree in trees], axis=0)
        return member_predictions.std(axis=0)
    if known_features is None or known_features.shape[0] == 0:
        return np.zeros(features.shape[0], dtype=np.float64)
    return distance_to_known(features, known_features)


def blended_exploration_bonus(
    surrogates: Sequence, features: np.ndarray, known_features: np.ndarray
) -> np.ndarray:
    """Mean exploration bonus over *all* objective surrogates.

    The pre-engine active-learning loop consulted only the first objective's
    model, so e.g. power-side ensemble disagreement never drove acquisition;
    averaging the per-objective bonuses lets every objective pull.
    """
    if not surrogates:
        raise ValueError("blended_exploration_bonus needs at least one surrogate")
    bonuses = np.stack(
        [
            regressor_exploration_bonus(surrogate, features, known_features)
            for surrogate in surrogates
        ],
        axis=0,
    )
    return bonuses.mean(axis=0)


class MultiObjectiveSurrogate(abc.ABC):
    """One model per objective behind a single batched ``predict``."""

    #: Objective names, in column order of :meth:`predict`.
    objective_names: tuple[str, ...] = ()

    @property
    def num_objectives(self) -> int:
        return len(self.objective_names)

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict all objectives: ``(n, d)`` features -> ``(n, m)`` matrix."""

    @property
    def supports_fit(self) -> bool:
        """Whether :meth:`fit` is implemented (active loops refit per round)."""
        return False

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MultiObjectiveSurrogate":
        """Refit on ``(n, d)`` features and an ``(n, m)`` objective matrix."""
        raise NotImplementedError(f"{type(self).__name__} does not support refitting")

    def exploration_bonus(
        self, features: np.ndarray, known_features: Optional[np.ndarray]
    ) -> np.ndarray:
        """Acquisition tie-breaker (higher = more informative to simulate).

        The default is the distance to the already-simulated set; surrogates
        with an ensemble structure override this with (blended) member
        disagreement.
        """
        if known_features is None or known_features.shape[0] == 0:
            return np.zeros(features.shape[0], dtype=np.float64)
        return distance_to_known(features, known_features)


class CallableSurrogate(MultiObjectiveSurrogate):
    """Wrap the legacy per-objective callables in the engine interface.

    Predictions are collected with one call per objective, exactly like the
    pre-engine explorers did (same call order, same ``float64`` coercion), so
    the engine path reproduces their results bitwise.
    """

    def __init__(self, predictors: Mapping[str, PredictorFn]) -> None:
        if not predictors:
            raise ValueError("CallableSurrogate needs at least one predictor")
        self.predictors = dict(predictors)
        self.objective_names = tuple(self.predictors)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.stack(
            [
                np.asarray(self.predictors[name](features), dtype=np.float64)
                for name in self.objective_names
            ],
            axis=1,
        )


class TreeEnsembleSurrogate(MultiObjectiveSurrogate):
    """One tree regressor per objective, refit together every round."""

    def __init__(self, factory: RegressorFactory, objective_names: Sequence[str]) -> None:
        objective_names = tuple(objective_names)
        if not objective_names:
            raise ValueError("TreeEnsembleSurrogate needs at least one objective")
        self.factory = factory
        self.objective_names = objective_names
        self.regressors: list[Regressor] = []

    @property
    def supports_fit(self) -> bool:
        return True

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "TreeEnsembleSurrogate":
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim != 2 or targets.shape[1] != self.num_objectives:
            raise ValueError(
                f"expected an (n, {self.num_objectives}) objective matrix, "
                f"got shape {targets.shape}"
            )
        self.regressors = []
        for column in range(targets.shape[1]):
            regressor = self.factory()
            regressor.fit(features, targets[:, column])
            self.regressors.append(regressor)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self.regressors:
            raise RuntimeError("predict() called before fit()")
        return np.stack(
            [regressor.predict(features) for regressor in self.regressors], axis=1
        )

    def exploration_bonus(
        self, features: np.ndarray, known_features: Optional[np.ndarray]
    ) -> np.ndarray:
        if not self.regressors:
            raise RuntimeError("exploration_bonus() called before fit()")
        if known_features is None:
            known_features = np.empty((0, features.shape[1]), dtype=np.float64)
        return blended_exploration_bonus(self.regressors, features, known_features)


class StackedPredictorSurrogate(MultiObjectiveSurrogate):
    """Answer all objectives with one stacked-parameter nn forward.

    Takes one :class:`TransformerPredictor` per objective (typically the
    per-metric adapted predictors ``MetaDSE.adapt_many`` returns).  When the
    models are architecture-identical their parameters are stacked on a
    leading objective axis once, and ``predict`` broadcasts the candidate
    features across that axis into a single
    :meth:`~repro.nn.module.Module.functional_call` — one graph instead of
    one forward per objective.  Models with mismatched parameter sets (e.g.
    one carries a WAM mask and another does not) or with differing
    non-parameter tensor state (e.g. *non-learnable* masks, which are
    absent from ``state_dict`` but shape the forward) fall back to a
    per-predictor loop transparently.

    ``label_means`` / ``label_stds`` undo per-objective label
    standardisation, so a surrogate built from facade-adapted predictors
    emits physical units like ``MetaDSE.predict`` does.

    ``tile_size`` streams the stacked forward over candidate blocks of that
    many rows instead of materialising one pool-sized ``(m, pool, ...)``
    stacked intermediate per layer — the memory-bound regime of wide
    predictors over large pools.  The stacked path always runs under the
    slice-stable kernels of :mod:`repro.nn.parallel`
    (``ensure_active``), so the blocked results are **bitwise identical**
    to the unblocked ones for every tile size, and fan out across threads
    when a ``repro.nn.parallel.threads(n)`` policy is set.
    """

    def __init__(
        self,
        predictors: Sequence[TransformerPredictor],
        objective_names: Sequence[str],
        *,
        label_means: Optional[Sequence[float]] = None,
        label_stds: Optional[Sequence[float]] = None,
        tile_size: Optional[int] = None,
    ) -> None:
        predictors = list(predictors)
        objective_names = tuple(objective_names)
        if not predictors:
            raise ValueError("StackedPredictorSurrogate needs at least one predictor")
        if len(predictors) != len(objective_names):
            raise ValueError("one predictor per objective name is required")
        self.predictors = predictors
        self.objective_names = objective_names
        self._means = np.asarray(
            label_means if label_means is not None else [0.0] * len(predictors),
            dtype=np.float64,
        )
        self._stds = np.asarray(
            label_stds if label_stds is not None else [1.0] * len(predictors),
            dtype=np.float64,
        )
        if self._means.shape != (len(predictors),) or self._stds.shape != (len(predictors),):
            raise ValueError("label_means/label_stds must provide one value per objective")
        if tile_size is not None and int(tile_size) < 1:
            raise ValueError(f"tile_size must be >= 1, got {tile_size}")
        self.tile_size = None if tile_size is None else int(tile_size)
        self._params = self._stack_parameters()

    def _stack_parameters(self) -> Optional[dict[str, Tensor]]:
        """Stack all models' parameters, or ``None`` when not stackable."""
        states = [predictor.state_dict() for predictor in self.predictors]
        names = set(states[0])
        if any(set(state) != names for state in states[1:]):
            return None
        # Non-parameter tensor state (e.g. a WAM mask installed with
        # ``learnable=False``) is absent from ``state_dict`` yet shapes the
        # forward.  The stacked path runs the template's forward for every
        # objective, so it is only valid when all models carry bitwise-
        # identical buffers; otherwise predictor[0]'s mask would silently be
        # applied to every objective.
        reference = list(self.predictors[0].named_buffers())
        for predictor in self.predictors[1:]:
            buffers = list(predictor.named_buffers())
            if [name for name, _ in buffers] != [name for name, _ in reference]:
                return None
            for (_, ours), (_, theirs) in zip(reference, buffers):
                if not np.array_equal(ours.data, theirs.data):
                    return None
        stacked: dict[str, Tensor] = {}
        dtype = self.predictors[0].dtype
        for name in states[0]:
            arrays = [state[name] for state in states]
            if any(array.shape != arrays[0].shape for array in arrays[1:]):
                return None
            stacked[name] = Tensor(
                np.stack(arrays).astype(dtype, copy=False), name=name
            )
        return stacked

    @property
    def is_stacked(self) -> bool:
        """True when ``predict`` runs the one-graph stacked path."""
        return self._params is not None

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if self._params is None:
            raw = np.stack(
                [predictor.predict(features) for predictor in self.predictors], axis=1
            )
            return raw * self._stds[None, :] + self._means[None, :]
        template = self.predictors[0]
        cast = features.astype(template.dtype, copy=False)
        n_rows = len(cast)
        n_objectives = len(self.predictors)
        if self.tile_size is None:
            spans = [(0, n_rows)] if n_rows else []
        else:
            spans = nn_parallel.tile_spans(n_rows, self.tile_size)
        raw = np.empty((n_rows, n_objectives), dtype=np.float64)
        was_training = template.training
        template.eval()
        # The streamed forward would leave each attention layer's
        # ``last_attention`` buffer aliasing only the final block; disable
        # storage for the duration instead of publishing partial state.
        stored_flags = [
            (layer, layer.store_attention) for layer in template.attention_layers()
        ]
        try:
            for layer, _ in stored_flags:
                layer.store_attention = False
            # Parameters are bound once around the whole block stream (one
            # mutation/restore instead of one per block); ensure_active
            # engages the slice-stable kernels so every block reproduces
            # the bits of the unblocked forward.
            with nn_parallel.ensure_active(), template.bound_parameters(self._params):
                for start, stop in spans:
                    block = np.broadcast_to(
                        cast[start:stop],
                        (n_objectives, stop - start) + cast.shape[1:],
                    ).copy()
                    out = template.forward(Tensor(block))
                    raw[start:stop] = np.asarray(out.data, dtype=np.float64).T
        finally:
            for layer, flag in stored_flags:
                layer.store_attention = flag
            template.train(was_training)
        return raw * self._stds[None, :] + self._means[None, :]

    def attention_profile(self, features: np.ndarray):
        """Distil a parameter-importance profile from the stacked models.

        Runs :func:`repro.meta.wam.profile_from_predictors` over every
        per-objective predictor on *features* (one eval-mode forward each
        with attention storage temporarily enabled) and merges the
        per-objective profiles into one normalized
        :class:`~repro.meta.wam.ImportanceProfile`.  This is the hook
        :class:`~repro.dse.engine.FocusedPool` probes for when refocusing a
        pruned candidate pool between rounds; it is deterministic for fixed
        *features* and bitwise invariant to the ``threads(n)`` policy.
        """
        # Function-level import: repro.meta.wam already imports the nn layer
        # this module builds on, so a top-level import would be cyclic.
        from repro.meta.wam import profile_from_predictors

        return profile_from_predictors(self.predictors, features)
