"""Active-learning DSE loop: simulate, retrain, refine.

The single-shot explorers spend their whole simulation budget at once.  An
*active* loop instead alternates between (cheap) surrogate screening and
(expensive) simulation in small batches, retraining the surrogate on every
new measurement — the workflow a designer actually runs when the simulation
budget is tight and no pre-trained cross-workload model is available, and
the natural consumer of a MetaDSE-adapted predictor as the initial surrogate.

Acquisition per round:

1. screen a random candidate pool with the current surrogates;
2. rank candidates by predicted Pareto rank, breaking ties with an
   exploration bonus (ensemble disagreement when the surrogate is a random
   forest, otherwise distance to the already-simulated set);
3. simulate the top batch, append the measurements to the training set and
   refit the surrogates.

The loop records the measured Pareto front and its hypervolume after every
round so budget/quality trade-off curves can be plotted or benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.baselines.base import Regressor
from repro.baselines.trees import RandomForestRegressor
from repro.designspace.encoding import OrdinalEncoder
from repro.designspace.sampling import RandomSampler
from repro.designspace.space import Configuration, DesignSpace
from repro.dse.pareto import hypervolume_2d, pareto_front, to_minimization
from repro.sim.simulator import Simulator
from repro.utils.rng import SeedLike, as_rng

#: Factory returning a fresh regressor for one objective.
RegressorFactory = Callable[[], Regressor]


@dataclass
class ActiveLearningRound:
    """Snapshot of the exploration state after one acquisition round."""

    round_index: int
    simulations_total: int
    pareto_size: int
    hypervolume: float


@dataclass
class ActiveLearningResult:
    """Final outcome of an active-learning exploration."""

    simulated_configs: list[Configuration]
    measured_objectives: np.ndarray
    objective_names: tuple[str, ...]
    pareto_indices: np.ndarray
    rounds: list[ActiveLearningRound] = field(default_factory=list)

    @property
    def simulations_used(self) -> int:
        """Total simulator invocations spent."""
        return len(self.simulated_configs)

    @property
    def pareto_configs(self) -> list[Configuration]:
        """Measured-Pareto-optimal configurations."""
        return [self.simulated_configs[int(i)] for i in self.pareto_indices]

    @property
    def pareto_objectives(self) -> np.ndarray:
        """Objective rows of the measured Pareto front."""
        return self.measured_objectives[self.pareto_indices]

    def hypervolume_history(self) -> list[float]:
        """Hypervolume after each round (budget/quality curve)."""
        return [entry.hypervolume for entry in self.rounds]


def _default_factory() -> Regressor:
    return RandomForestRegressor(n_estimators=30, max_depth=10, seed=0)


class ActiveLearningExplorer:
    """Iterative simulate-train-refine exploration of one workload."""

    def __init__(
        self,
        space: DesignSpace,
        simulator: Simulator,
        *,
        surrogate_factory: RegressorFactory = _default_factory,
        candidate_pool: int = 1000,
        seed: SeedLike = 0,
    ) -> None:
        if candidate_pool < 10:
            raise ValueError("candidate_pool must be >= 10")
        self.space = space
        self.simulator = simulator
        self.surrogate_factory = surrogate_factory
        self.candidate_pool = candidate_pool
        self.rng = as_rng(seed)
        self.encoder = OrdinalEncoder(space)
        self.sampler = RandomSampler(space, seed=self.rng)

    # -- helpers ------------------------------------------------------------------
    def _measure(
        self, configs: Sequence[Configuration], workload: str, objective_names: tuple[str, ...]
    ) -> np.ndarray:
        # One vectorized simulator call per acquisition batch; objective()
        # accepts the dataset-layer alias "power" for the simulator's
        # "power_w".
        batch = self.simulator.run_batch(configs, workload)
        return np.stack([batch.objective(name) for name in objective_names], axis=1)

    @staticmethod
    def _exploration_bonus(
        surrogate: Regressor, features: np.ndarray, known_features: np.ndarray
    ) -> np.ndarray:
        """Disagreement of a forest's trees, or distance to the known set."""
        trees = getattr(surrogate, "trees_", None)
        if trees:
            member_predictions = np.stack([tree.predict(features) for tree in trees], axis=0)
            return member_predictions.std(axis=0)
        distances = np.min(
            np.linalg.norm(features[:, None, :] - known_features[None, :, :], axis=2), axis=1
        )
        return distances

    @staticmethod
    def _hypervolume(measured_min: np.ndarray) -> float:
        front = measured_min[pareto_front(measured_min)]
        nadir = measured_min.max(axis=0)
        span = np.maximum(measured_min.max(axis=0) - measured_min.min(axis=0), 1e-12)
        reference = nadir + 0.1 * span
        if front.shape[1] != 2:
            return 0.0
        return hypervolume_2d(front, reference)

    # -- main loop ------------------------------------------------------------------
    def explore(
        self,
        workload: str,
        *,
        objective_names: Sequence[str] = ("ipc", "power"),
        maximize: Optional[dict[str, bool]] = None,
        initial_samples: int = 20,
        batch_size: int = 10,
        rounds: int = 5,
    ) -> ActiveLearningResult:
        """Run the simulate-train-refine loop on one target workload."""
        if initial_samples < 2:
            raise ValueError("initial_samples must be >= 2")
        if batch_size < 1 or rounds < 1:
            raise ValueError("batch_size and rounds must be >= 1")
        objective_names = tuple(objective_names)
        maximize = maximize or {}
        maximize_flags = [maximize.get(name, name == "ipc") for name in objective_names]

        simulated = self.sampler.sample(initial_samples)
        measured = self._measure(simulated, workload, objective_names)
        history: list[ActiveLearningRound] = []

        for round_index in range(rounds):
            known_features = self.encoder.encode_batch(simulated)
            surrogates: list[Regressor] = []
            for column in range(measured.shape[1]):
                surrogate = self.surrogate_factory()
                surrogate.fit(known_features, measured[:, column])
                surrogates.append(surrogate)

            candidates = self.sampler.sample(self.candidate_pool)
            candidate_features = self.encoder.encode_batch(candidates)
            predicted = np.stack(
                [surrogate.predict(candidate_features) for surrogate in surrogates], axis=1
            )
            predicted_min = to_minimization(predicted, maximize_flags)

            # Rank by predicted Pareto membership, then by exploration bonus.
            front_indices = set(int(i) for i in pareto_front(predicted_min))
            bonus = self._exploration_bonus(surrogates[0], candidate_features, known_features)
            order = sorted(
                range(len(candidates)),
                key=lambda i: (0 if i in front_indices else 1, -bonus[i]),
            )
            chosen = [candidates[i] for i in order[:batch_size]]

            new_measurements = self._measure(chosen, workload, objective_names)
            simulated.extend(chosen)
            measured = np.concatenate([measured, new_measurements], axis=0)

            measured_min = to_minimization(measured, maximize_flags)
            history.append(
                ActiveLearningRound(
                    round_index=round_index,
                    simulations_total=len(simulated),
                    pareto_size=int(len(pareto_front(measured_min))),
                    hypervolume=self._hypervolume(measured_min),
                )
            )

        measured_min = to_minimization(measured, maximize_flags)
        return ActiveLearningResult(
            simulated_configs=simulated,
            measured_objectives=measured,
            objective_names=objective_names,
            pareto_indices=pareto_front(measured_min),
            rounds=history,
        )
