"""Active-learning DSE loop: simulate, retrain, refine.

The single-shot explorers spend their whole simulation budget at once.  An
*active* loop instead alternates between (cheap) surrogate screening and
(expensive) simulation in small batches, retraining the surrogate on every
new measurement — the workflow a designer actually runs when the simulation
budget is tight and no pre-trained cross-workload model is available, and
the natural consumer of a MetaDSE-adapted predictor as the initial surrogate.

Acquisition per round:

1. screen a random candidate pool with the current surrogates;
2. rank candidates by predicted Pareto rank, breaking ties with an
   exploration bonus blended over *all* objective surrogates (ensemble
   disagreement for forests, otherwise distance to the already-simulated
   set) — so e.g. power-side uncertainty drives acquisition as much as
   IPC-side uncertainty;
3. simulate the top batch, append the measurements to the training set and
   refit the surrogates.

The loop records the measured Pareto front and its hypervolume after every
round so budget/quality trade-off curves can be plotted or benchmarked.

:class:`ActiveLearningExplorer` is a thin strategy configuration over the
shared :class:`~repro.dse.engine.CampaignEngine` (``rounds=r,
initial_samples=k, refit=True`` with a
:class:`~repro.dse.surrogates.TreeEnsembleSurrogate` and
:class:`~repro.dse.acquisition.ExplorationBonusAcquisition`); the pre-engine
loop survives as :meth:`ActiveLearningExplorer.explore_reference`, the
executable specification the equivalence tests pin the engine path against
bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import Regressor
from repro.baselines.trees import RandomForestRegressor
from repro.designspace.encoding import OrdinalEncoder
from repro.designspace.sampling import RandomSampler
from repro.designspace.space import Configuration, DesignSpace
from repro.dse.acquisition import ExplorationBonusAcquisition
from repro.dse.engine import (
    CampaignEngine,
    ObjectiveSet,
    RandomPool,
    front_hypervolume,
)
from repro.dse.pareto import pareto_front, to_minimization
from repro.dse.surrogates import (
    RegressorFactory,
    TreeEnsembleSurrogate,
    blended_exploration_bonus,
    regressor_exploration_bonus,
)
from repro.sim.simulator import Simulator
from repro.utils.rng import SeedLike, as_rng


@dataclass
class ActiveLearningRound:
    """Snapshot of the exploration state after one acquisition round."""

    round_index: int
    simulations_total: int
    pareto_size: int
    hypervolume: float


@dataclass
class ActiveLearningResult:
    """Final outcome of an active-learning exploration."""

    simulated_configs: list[Configuration]
    measured_objectives: np.ndarray
    objective_names: tuple[str, ...]
    pareto_indices: np.ndarray
    rounds: list[ActiveLearningRound] = field(default_factory=list)

    @property
    def simulations_used(self) -> int:
        """Total simulator invocations spent."""
        return len(self.simulated_configs)

    @property
    def pareto_configs(self) -> list[Configuration]:
        """Measured-Pareto-optimal configurations."""
        return [self.simulated_configs[int(i)] for i in self.pareto_indices]

    @property
    def pareto_objectives(self) -> np.ndarray:
        """Objective rows of the measured Pareto front."""
        return self.measured_objectives[self.pareto_indices]

    def hypervolume_history(self) -> list[float]:
        """Hypervolume after each round (budget/quality curve)."""
        return [entry.hypervolume for entry in self.rounds]


def _default_factory() -> Regressor:
    return RandomForestRegressor(n_estimators=30, max_depth=10, seed=0)


class ActiveLearningExplorer:
    """Iterative simulate-train-refine exploration of one workload."""

    def __init__(
        self,
        space: DesignSpace,
        simulator: Simulator,
        *,
        surrogate_factory: RegressorFactory = _default_factory,
        candidate_pool: int = 1000,
        seed: SeedLike = 0,
    ) -> None:
        if candidate_pool < 10:
            raise ValueError("candidate_pool must be >= 10")
        self.space = space
        self.simulator = simulator
        self.surrogate_factory = surrogate_factory
        self.candidate_pool = candidate_pool
        self.rng = as_rng(seed)
        self.encoder = OrdinalEncoder(space)
        self.sampler = RandomSampler(space, seed=self.rng)

    # -- helpers ------------------------------------------------------------------
    def _measure(
        self, configs: Sequence[Configuration], workload: str, objective_names: tuple[str, ...]
    ) -> np.ndarray:
        # One vectorized simulator call per acquisition batch; objective()
        # accepts the dataset-layer alias "power" for the simulator's
        # "power_w".
        batch = self.simulator.run_batch(configs, workload)
        return np.stack([batch.objective(name) for name in objective_names], axis=1)

    @staticmethod
    def _exploration_bonus(
        surrogate: Regressor, features: np.ndarray, known_features: np.ndarray
    ) -> np.ndarray:
        """Disagreement of a forest's trees, or distance to the known set."""
        return regressor_exploration_bonus(surrogate, features, known_features)

    @staticmethod
    def _hypervolume(measured_min: np.ndarray) -> float:
        if measured_min.shape[1] != 2:
            # Pre-engine behaviour, kept for API compatibility; the engine's
            # QualityTracker warns and records NaN instead.
            return 0.0
        return front_hypervolume(measured_min)

    def _validate(self, initial_samples: int, batch_size: int, rounds: int) -> None:
        if initial_samples < 2:
            raise ValueError("initial_samples must be >= 2")
        if batch_size < 1 or rounds < 1:
            raise ValueError("batch_size and rounds must be >= 1")

    # -- main loop ------------------------------------------------------------------
    def explore(
        self,
        workload: str,
        *,
        objective_names: Sequence[str] = ("ipc", "power"),
        maximize: Optional[dict[str, bool]] = None,
        initial_samples: int = 20,
        batch_size: int = 10,
        rounds: int = 5,
    ) -> ActiveLearningResult:
        """Run the simulate-train-refine loop on one target workload."""
        self._validate(initial_samples, batch_size, rounds)
        objectives = ObjectiveSet.from_names(tuple(objective_names), maximize)
        engine = CampaignEngine(
            self.space,
            self.simulator,
            objectives,
            sampler=self.sampler,
            encoder=self.encoder,
        )
        result = engine.run(
            workload,
            TreeEnsembleSurrogate(self.surrogate_factory, objectives.names),
            generator=RandomPool(self.candidate_pool),
            acquisition=ExplorationBonusAcquisition(),
            simulation_budget=batch_size,
            rounds=rounds,
            initial_samples=initial_samples,
            refit=True,
        )
        return ActiveLearningResult(
            simulated_configs=result.simulated_configs,
            measured_objectives=result.measured_objectives,
            objective_names=result.objective_names,
            pareto_indices=result.pareto_indices,
            rounds=[
                ActiveLearningRound(
                    round_index=entry.round_index,
                    simulations_total=entry.simulations_total,
                    pareto_size=entry.pareto_size,
                    hypervolume=entry.hypervolume,
                )
                for entry in result.rounds
            ],
        )

    def explore_reference(
        self,
        workload: str,
        *,
        objective_names: Sequence[str] = ("ipc", "power"),
        maximize: Optional[dict[str, bool]] = None,
        initial_samples: int = 20,
        batch_size: int = 10,
        rounds: int = 5,
    ) -> ActiveLearningResult:
        """Pre-engine simulate-train-refine loop (executable specification).

        Kept as the reference :meth:`explore` is equivalence-tested against
        (``tests/test_dse_engine_equivalence.py``).  The only intentional
        change from the seed loop is the blended exploration bonus (all
        objective surrogates, not just the first), which both paths share.
        """
        self._validate(initial_samples, batch_size, rounds)
        objective_names = tuple(objective_names)
        maximize = maximize or {}
        maximize_flags = [maximize.get(name, name == "ipc") for name in objective_names]

        simulated = self.sampler.sample(initial_samples)
        measured = self._measure(simulated, workload, objective_names)
        history: list[ActiveLearningRound] = []

        for round_index in range(rounds):
            known_features = self.encoder.encode_batch(simulated)
            surrogates: list[Regressor] = []
            for column in range(measured.shape[1]):
                surrogate = self.surrogate_factory()
                surrogate.fit(known_features, measured[:, column])
                surrogates.append(surrogate)

            candidates = self.sampler.sample(self.candidate_pool)
            candidate_features = self.encoder.encode_batch(candidates)
            predicted = np.stack(
                [surrogate.predict(candidate_features) for surrogate in surrogates], axis=1
            )
            predicted_min = to_minimization(predicted, maximize_flags)

            # Rank by predicted Pareto membership, then by exploration bonus.
            front_indices = set(int(i) for i in pareto_front(predicted_min))
            bonus = blended_exploration_bonus(
                surrogates, candidate_features, known_features
            )
            order = sorted(
                range(len(candidates)),
                key=lambda i: (0 if i in front_indices else 1, -bonus[i]),
            )
            chosen = [candidates[i] for i in order[:batch_size]]

            new_measurements = self._measure(chosen, workload, objective_names)
            simulated.extend(chosen)
            measured = np.concatenate([measured, new_measurements], axis=0)

            measured_min = to_minimization(measured, maximize_flags)
            history.append(
                ActiveLearningRound(
                    round_index=round_index,
                    simulations_total=len(simulated),
                    pareto_size=int(len(pareto_front(measured_min))),
                    hypervolume=self._hypervolume(measured_min),
                )
            )

        measured_min = to_minimization(measured, maximize_flags)
        return ActiveLearningResult(
            simulated_configs=simulated,
            measured_objectives=measured,
            objective_names=objective_names,
            pareto_indices=pareto_front(measured_min),
            rounds=history,
        )
