"""Design-space-exploration utilities built on top of the surrogate models.

The exploration loops are thin strategy configurations over one shared
:class:`~repro.dse.engine.CampaignEngine` (candidate generation,
acquisition scoring, measure/record bookkeeping); see
``docs/architecture.md`` for the layer diagram.
"""

from repro.dse.acquisition import (
    AcquisitionContext,
    AcquisitionStrategy,
    ExplorationBonusAcquisition,
    GreedyTopK,
    ParetoRankAcquisition,
)
from repro.dse.active import (
    ActiveLearningExplorer,
    ActiveLearningResult,
    ActiveLearningRound,
)
from repro.dse.constraints import (
    Constraint,
    best_feasible,
    feasible_mask,
    penalized_objectives,
)
from repro.dse.engine import (
    CampaignEngine,
    CampaignResult,
    CampaignRound,
    CandidateGenerator,
    FocusedPool,
    NSGA2Evolve,
    ObjectiveSet,
    QualityTracker,
    RandomPool,
    WorkloadCampaignResult,
)
from repro.dse.explorer import (
    ExplorationResult,
    NSGA2GuidedExplorer,
    PredictorGuidedExplorer,
)
from repro.dse.nsga2 import NSGA2Explorer, NSGA2Result, fast_non_dominated_sort
from repro.dse.portfolio import StrategyPortfolio
from repro.dse.pareto import (
    crowding_distance,
    hypervolume_2d,
    pareto_front,
    pareto_mask,
    to_minimization,
)
from repro.dse.quality import (
    adrs,
    adrs_slope,
    hypervolume_ratio,
    hypervolume_slope,
    monte_carlo_hypervolume,
    normalize_objectives,
    pareto_coverage,
)
from repro.dse.surrogates import (
    CallableSurrogate,
    MultiObjectiveSurrogate,
    StackedPredictorSurrogate,
    TreeEnsembleSurrogate,
)

__all__ = [
    "pareto_mask",
    "pareto_front",
    "hypervolume_2d",
    "crowding_distance",
    "to_minimization",
    "CampaignEngine",
    "CampaignResult",
    "CampaignRound",
    "CandidateGenerator",
    "ObjectiveSet",
    "QualityTracker",
    "RandomPool",
    "FocusedPool",
    "NSGA2Evolve",
    "StrategyPortfolio",
    "WorkloadCampaignResult",
    "AcquisitionContext",
    "AcquisitionStrategy",
    "ParetoRankAcquisition",
    "ExplorationBonusAcquisition",
    "GreedyTopK",
    "MultiObjectiveSurrogate",
    "CallableSurrogate",
    "TreeEnsembleSurrogate",
    "StackedPredictorSurrogate",
    "PredictorGuidedExplorer",
    "NSGA2GuidedExplorer",
    "ExplorationResult",
    "NSGA2Explorer",
    "NSGA2Result",
    "fast_non_dominated_sort",
    "ActiveLearningExplorer",
    "ActiveLearningResult",
    "ActiveLearningRound",
    "adrs",
    "adrs_slope",
    "pareto_coverage",
    "hypervolume_ratio",
    "hypervolume_slope",
    "monte_carlo_hypervolume",
    "normalize_objectives",
    "Constraint",
    "feasible_mask",
    "penalized_objectives",
    "best_feasible",
]
