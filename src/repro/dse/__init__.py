"""Design-space-exploration utilities built on top of the surrogate models."""

from repro.dse.active import (
    ActiveLearningExplorer,
    ActiveLearningResult,
    ActiveLearningRound,
)
from repro.dse.constraints import (
    Constraint,
    best_feasible,
    feasible_mask,
    penalized_objectives,
)
from repro.dse.explorer import ExplorationResult, PredictorGuidedExplorer
from repro.dse.nsga2 import NSGA2Explorer, NSGA2Result, fast_non_dominated_sort
from repro.dse.pareto import (
    crowding_distance,
    hypervolume_2d,
    pareto_front,
    pareto_mask,
    to_minimization,
)
from repro.dse.quality import (
    adrs,
    hypervolume_ratio,
    normalize_objectives,
    pareto_coverage,
)

__all__ = [
    "pareto_mask",
    "pareto_front",
    "hypervolume_2d",
    "crowding_distance",
    "to_minimization",
    "PredictorGuidedExplorer",
    "ExplorationResult",
    "NSGA2Explorer",
    "NSGA2Result",
    "fast_non_dominated_sort",
    "ActiveLearningExplorer",
    "ActiveLearningResult",
    "ActiveLearningRound",
    "adrs",
    "pareto_coverage",
    "hypervolume_ratio",
    "normalize_objectives",
    "Constraint",
    "feasible_mask",
    "penalized_objectives",
    "best_feasible",
]
