"""Strategy portfolio: a UCB bandit over candidate-generation strategies.

SoberDSE's observation (arXiv:2603.00986) is that no single exploration
algorithm wins across scenarios — learning-based algorithm *selection*
does.  :class:`StrategyPortfolio` brings that to the campaign engine: it is
itself a :class:`~repro.dse.engine.CandidateGenerator` whose registered
**arms** are other generators (``RandomPool``, ``FocusedPool``,
``NSGA2Evolve``...), and each round it delegates proposal to the arm a
per-workload UCB1 bandit selects.

The reward is the early-round **quality slope** from the campaign's
:class:`~repro.dse.engine.QualityTracker`: after each round the portfolio
reads the workload's hypervolume history and scores the arm that proposed
the round with :func:`repro.dse.quality.hypervolume_slope` (mean finite
round-over-round delta, window 1 by default) — a strategy whose rounds keep
growing the measured front keeps earning allocation.

Determinism is load-bearing (``docs/portfolio.md``):

* every arm must be :attr:`~repro.dse.engine.CandidateGenerator.
  rank_stable` — proposals keyed on ``(seed, workload, round)`` — so the
  portfolio is rank-stable too and runs on the parallel campaign runtime
  bitwise equal to serial;
* arm selection (:meth:`arm_for`) is a **pure function** of the bandit
  statistics accumulated for rounds ``< round_index`` of the same
  workload: registration-order round-robin while ``round_index`` is below
  the arm count, then UCB1 with registration-order tie-breaks.  Bandit
  state only mutates in :meth:`observe_round`, which the engine and the
  runtime call in round order in the *parent* process — workers holding a
  pickled copy never race on it, and a resumed campaign replays the same
  observations from its checkpoint to land in the same state bitwise.

The full allocation trace is recorded per round in
:attr:`~repro.dse.engine.CampaignRound.extras` (key ``"arm"``), the
checkpoint (``RoundRecord.arms``), and :meth:`allocation_trace`.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from repro.designspace.space import Configuration
from repro.dse.engine import CandidateGenerator, QualityTracker
from repro import obs
from repro.dse.quality import hypervolume_slope
from repro.dse.surrogates import MultiObjectiveSurrogate

#: Default UCB1 exploration coefficient (the classic sqrt(2)).
UCB_EXPLORATION = math.sqrt(2.0)


class StrategyPortfolio(CandidateGenerator):
    """Bandit-allocated portfolio over rank-stable candidate generators.

    Parameters
    ----------
    arms:
        Ordered mapping of arm name to generator.  Registration order is
        semantic: it fixes the warm-up rotation and every tie-break, so two
        portfolios with the same arms in the same order behave identically.
    exploration:
        UCB1 exploration coefficient (0 = pure exploitation after warm-up).
    reward_window:
        Trailing rounds fed to :func:`~repro.dse.quality.hypervolume_slope`
        per observation; the default 1 scores exactly the observed round's
        improvement.
    """

    surrogate_dependent = True
    rank_stable = True

    def __init__(
        self,
        arms: Mapping[str, CandidateGenerator],
        *,
        exploration: float = UCB_EXPLORATION,
        reward_window: int = 1,
    ) -> None:
        arms = dict(arms)
        if not arms:
            raise ValueError("StrategyPortfolio needs at least one arm")
        for name, arm in arms.items():
            if not getattr(arm, "rank_stable", False):
                raise ValueError(
                    f"portfolio arm {name!r} ({type(arm).__name__}) is not "
                    f"rank-stable; construct it with seed= so proposals are "
                    f"keyed per (workload, round)"
                )
        if exploration < 0.0:
            raise ValueError(f"exploration must be >= 0, got {exploration}")
        if reward_window < 1:
            raise ValueError(f"reward_window must be >= 1, got {reward_window}")
        self.arms = arms
        self.arm_names = tuple(arms)
        self.exploration = float(exploration)
        self.reward_window = int(reward_window)
        #: Per-workload bandit statistics: plays and reward sums per arm.
        self._plays: dict[Optional[str], dict[str, int]] = {}
        self._rewards: dict[Optional[str], dict[str, float]] = {}
        self._trace: list[dict] = []

    # -- selection (pure) -------------------------------------------------------
    def arm_for(self, workload: Optional[str], round_index: int) -> str:
        """Name of the arm that proposes for ``(workload, round_index)``.

        Pure: depends only on construction arguments and the observations
        already folded in for rounds ``< round_index`` of *workload*.
        """
        if round_index < len(self.arm_names):
            # Warm-up rotation: every arm gets one round in registration
            # order before any statistics are consulted.
            return self.arm_names[round_index]
        plays = self._plays.get(workload, {})
        rewards = self._rewards.get(workload, {})
        total = sum(plays.values())
        if total == 0:
            return self.arm_names[0]
        best_name = None
        best_score = -math.inf
        for name in self.arm_names:
            count = plays.get(name, 0)
            if count == 0:
                # Unplayed after warm-up (quality tracking was off for its
                # round): optimistically infinite, first in registration
                # order wins.
                return name
            score = rewards.get(name, 0.0) / count + self.exploration * math.sqrt(
                math.log(total) / count
            )
            if score > best_score:
                best_name = name
                best_score = score
        return best_name

    def proposer_for(
        self, workload: Optional[str], round_index: int
    ) -> CandidateGenerator:
        """The selected arm itself — what the parallel runtime ships to jobs."""
        return self.arms[self.arm_for(workload, round_index)]

    # -- proposal --------------------------------------------------------------
    def propose(
        self,
        engine,
        surrogate: Optional[MultiObjectiveSurrogate],
        round_index: int,
    ) -> list[Configuration]:
        return self.propose_for(engine, surrogate, None, round_index)

    def propose_for(
        self,
        engine,
        surrogate: Optional[MultiObjectiveSurrogate],
        workload: Optional[str],
        round_index: int,
    ) -> list[Configuration]:
        arm = self.proposer_for(workload, round_index)
        return arm.propose_for(engine, surrogate, workload, round_index)

    # -- learning --------------------------------------------------------------
    def observe_round(
        self, workload: str, round_index: int, tracker: QualityTracker
    ) -> None:
        """Fold one recorded round's quality slope into the bandit state.

        Must be called once per ``(workload, round)`` in round order —
        :meth:`arm_for` re-derives which arm proposed the round from the
        pre-observation state, so out-of-order observation would credit the
        wrong arm.
        """
        arm = self.arm_for(workload, round_index)
        history = [
            entry.hypervolume
            for entry in tracker.rounds
            if entry.round_index <= round_index
        ]
        reward = hypervolume_slope(history, window=self.reward_window)
        plays = self._plays.setdefault(workload, {})
        rewards = self._rewards.setdefault(workload, {})
        plays[arm] = plays.get(arm, 0) + 1
        rewards[arm] = rewards.get(arm, 0.0) + reward
        self._trace.append(
            {
                "workload": workload,
                "round": int(round_index),
                "arm": arm,
                "reward": float(reward),
            }
        )
        obs.event(
            "bandit.observe",
            workload=workload,
            round=int(round_index),
            arm=arm,
            reward=float(reward),
        )
        obs.add_counter("bandit.observations", 1)

    def allocation_trace(self) -> list[dict]:
        """Chronological ``{workload, round, arm, reward}`` records."""
        return [dict(entry) for entry in self._trace]

    def fingerprint(self) -> str:
        """Checkpoint descriptor: arms (ordered, with their own knobs) + bandit knobs."""
        described = ", ".join(
            f"{name}={self._describe_arm(arm)}" for name, arm in self.arms.items()
        )
        return (
            f"StrategyPortfolio(exploration={self.exploration}, "
            f"reward_window={self.reward_window}, arms=[{described}])"
        )

    @staticmethod
    def _describe_arm(arm: CandidateGenerator) -> str:
        fingerprint = getattr(arm, "fingerprint", None)
        return fingerprint() if callable(fingerprint) else type(arm).__name__
