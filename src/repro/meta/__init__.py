"""Meta-learning core: MAML pre-training, WAM generation and adaptation."""

from repro.meta.adaptation import (
    PAPER_ADAPTATION_CONFIG,
    AdaptationConfig,
    AdaptationResult,
    adapt_predictor,
)
from repro.meta.maml import (
    ALGORITHMS,
    PAPER_MAML_CONFIG,
    MAMLConfig,
    MAMLTrainer,
    MetaTrainingHistory,
)
from repro.meta.variants import (
    META_TRAINER_VARIANTS,
    ANILTrainer,
    MetaSGDTrainer,
    make_meta_trainer,
)
from repro.meta.wam import (
    ArchitecturalMask,
    ImportanceProfile,
    WAMBuilder,
    WAMConfig,
    attention_importance,
    generate_wam,
    importance_profile,
    merge_profiles,
    profile_from_predictors,
)

__all__ = [
    "MAMLConfig",
    "PAPER_MAML_CONFIG",
    "MAMLTrainer",
    "MetaTrainingHistory",
    "ALGORITHMS",
    "ANILTrainer",
    "MetaSGDTrainer",
    "META_TRAINER_VARIANTS",
    "make_meta_trainer",
    "WAMConfig",
    "WAMBuilder",
    "ArchitecturalMask",
    "generate_wam",
    "ImportanceProfile",
    "attention_importance",
    "importance_profile",
    "profile_from_predictors",
    "merge_profiles",
    "AdaptationConfig",
    "PAPER_ADAPTATION_CONFIG",
    "AdaptationResult",
    "adapt_predictor",
]
