"""MAML-based pre-training (Algorithm 1 of the paper).

The trainer optimises a surrogate model's *initialisation* so that a few
gradient steps on a small support set produce good predictions on the query
set of the same task.  Structure of one meta-iteration:

* sample a batch of tasks (episodes) from the source workloads;
* **inner loop** — for each task, copy the current parameters ``theta`` into
  ``theta_hat`` and take ``inner_steps`` SGD steps on the support loss
  (Algorithm 1 lines 4-12);
* **outer loop** — evaluate each adapted copy on its query set, average the
  resulting gradients and apply them to ``theta`` with Adam
  (Algorithm 1 lines 13-14).

Two meta-gradient flavours are implemented:

* ``"fomaml"`` (default) — first-order MAML: the query-set gradient with
  respect to the adapted parameters is applied directly to the initial
  parameters, dropping the second-order term.  This is the standard
  practical approximation of the full MAML update and is what makes the
  numpy implementation tractable.
* ``"reptile"`` — the Reptile update ``theta <- theta + eps * (theta_hat - theta)``,
  provided as an ablation of the meta-gradient choice.

After every epoch a meta-validation pass measures post-adaptation query loss
on the validation workloads; the best-performing parameters are restored at
the end (the paper's "identify the optimal parameters for downstream tasks").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.datasets.tasks import Task, TaskSampler
from repro.nn.losses import mse_loss
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng

#: Meta-gradient flavours supported by :class:`MAMLTrainer`.
ALGORITHMS = ("fomaml", "reptile")


@dataclass
class MAMLConfig:
    """Hyper-parameters of the MAML pre-training stage.

    The defaults are tuned for the synthetic substrate and single-core CPU
    training; :data:`PAPER_MAML_CONFIG` records the values quoted in
    Section VI-A of the paper.
    """

    inner_lr: float = 0.02
    outer_lr: float = 2e-3
    inner_steps: int = 5
    meta_epochs: int = 15
    tasks_per_workload: int = 200
    meta_batch_size: int = 4
    support_size: int = 5
    query_size: int = 45
    grad_clip: float = 10.0
    algorithm: str = "fomaml"
    #: Reptile interpolation rate (only used when ``algorithm == "reptile"``).
    reptile_epsilon: float = 0.5
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; choose from {ALGORITHMS}"
            )
        if self.inner_lr <= 0 or self.outer_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.inner_steps < 1:
            raise ValueError("inner_steps must be >= 1")
        if self.meta_epochs < 1:
            raise ValueError("meta_epochs must be >= 1")
        if self.meta_batch_size < 1:
            raise ValueError("meta_batch_size must be >= 1")


#: The exact hyper-parameters reported in Section VI-A of the paper.
PAPER_MAML_CONFIG = MAMLConfig(
    inner_lr=1e-5,
    outer_lr=1e-4,
    inner_steps=5,
    meta_epochs=15,
    tasks_per_workload=200,
    support_size=5,
    query_size=45,
)


@dataclass
class MetaTrainingHistory:
    """Per-epoch record of the meta-training run."""

    train_losses: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_validation_loss: float = float("inf")
    total_tasks: int = 0

    @property
    def num_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_losses)


class MAMLTrainer:
    """Meta-trains a surrogate model per Algorithm 1."""

    def __init__(self, model: Module, config: Optional[MAMLConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else MAMLConfig()
        self.rng = as_rng(self.config.seed)
        self.outer_optimizer = Adam(model.parameters(), self.config.outer_lr)
        self.history = MetaTrainingHistory()

    # -- inner loop -----------------------------------------------------------
    def adapt(
        self,
        support_x: np.ndarray,
        support_y: np.ndarray,
        *,
        model: Optional[Module] = None,
        steps: Optional[int] = None,
        lr: Optional[float] = None,
    ) -> Module:
        """Clone the model and run the inner-loop SGD on a support set.

        Returns the adapted copy; the original model is left untouched
        (Algorithm 1 line 5: ``theta_hat = theta``).
        """
        source = model if model is not None else self.model
        steps = steps if steps is not None else self.config.inner_steps
        lr = lr if lr is not None else self.config.inner_lr
        adapted = source.clone()
        optimizer = SGD(adapted.parameters(), lr)
        x = Tensor(np.asarray(support_x, dtype=np.float64))
        y = np.asarray(support_y, dtype=np.float64)
        for _ in range(steps):
            optimizer.zero_grad()
            loss = mse_loss(adapted(x), y)
            loss.backward()
            optimizer.step()
        return adapted

    # -- outer loop -----------------------------------------------------------
    def meta_step(self, tasks: Sequence[Task]) -> float:
        """One outer-loop update over a batch of tasks; returns the meta-loss."""
        if not tasks:
            raise ValueError("meta_step needs at least one task")
        names = [name for name, _ in self.model.named_parameters()]
        meta_grads = {name: np.zeros_like(p.data) for name, p in self.model.named_parameters()}
        total_loss = 0.0

        for task in tasks:
            adapted = self.adapt(task.support_x, task.support_y)
            adapted.zero_grad()
            query_loss = mse_loss(adapted(Tensor(task.query_x)), task.query_y)
            query_loss.backward()
            total_loss += query_loss.item()

            if self.config.algorithm == "fomaml":
                for name, parameter in adapted.named_parameters():
                    if parameter.grad is not None:
                        meta_grads[name] += parameter.grad
            else:  # reptile
                original = dict(self.model.named_parameters())
                for name, parameter in adapted.named_parameters():
                    meta_grads[name] += (original[name].data - parameter.data) / max(
                        self.config.inner_lr * self.config.inner_steps, 1e-12
                    ) * self.config.reptile_epsilon

        scale = 1.0 / len(tasks)
        self.outer_optimizer.zero_grad()
        for name, parameter in self.model.named_parameters():
            parameter.grad = meta_grads[name] * scale
        if self.config.grad_clip > 0:
            clip_grad_norm(self.model.parameters(), self.config.grad_clip)
        self.outer_optimizer.step()
        _ = names  # kept for symmetry / debugging
        return total_loss / len(tasks)

    # -- validation ------------------------------------------------------------
    def meta_validate(
        self,
        sampler: TaskSampler,
        workloads: Sequence[str],
        *,
        tasks_per_workload: int = 4,
    ) -> float:
        """Average post-adaptation query loss on held-out workloads."""
        if not workloads:
            raise ValueError("meta_validate needs at least one workload")
        losses = []
        for task in sampler.sample_batch(workloads, tasks_per_workload=tasks_per_workload):
            adapted = self.adapt(task.support_x, task.support_y)
            predictions = adapted(Tensor(task.query_x))
            losses.append(mse_loss(predictions, task.query_y).item())
        return float(np.mean(losses))

    # -- full training loop -------------------------------------------------------
    def meta_train(
        self,
        sampler: TaskSampler,
        train_workloads: Sequence[str],
        validation_workloads: Optional[Sequence[str]] = None,
        *,
        epoch_callback: Optional[Callable[[int, float, Optional[float]], None]] = None,
    ) -> MetaTrainingHistory:
        """Run the full pre-training loop of Algorithm 1.

        Parameters
        ----------
        sampler:
            Episodic task sampler over the labelled dataset.  Its support and
            query sizes are used as-is (they may differ from the config when
            a sensitivity study overrides them).
        train_workloads, validation_workloads:
            Source and meta-validation workload names.
        epoch_callback:
            Optional ``f(epoch, train_loss, validation_loss)`` hook, useful
            for logging and early-stopping experiments.
        """
        if not train_workloads:
            raise ValueError("meta_train needs at least one training workload")
        best_state = self.model.state_dict()
        for epoch in range(self.config.meta_epochs):
            epoch_losses = []
            for batch in sampler.iterate_epoch(
                train_workloads,
                tasks_per_workload=self.config.tasks_per_workload,
                batch_size=self.config.meta_batch_size,
            ):
                epoch_losses.append(self.meta_step(batch))
                self.history.total_tasks += len(batch)
            train_loss = float(np.mean(epoch_losses))
            self.history.train_losses.append(train_loss)

            validation_loss: Optional[float] = None
            if validation_workloads:
                validation_loss = self.meta_validate(sampler, validation_workloads)
                self.history.validation_losses.append(validation_loss)
                if validation_loss < self.history.best_validation_loss:
                    self.history.best_validation_loss = validation_loss
                    self.history.best_epoch = epoch
                    best_state = self.model.state_dict()
            if epoch_callback is not None:
                epoch_callback(epoch, train_loss, validation_loss)

        if validation_workloads and self.history.best_epoch >= 0:
            self.model.load_state_dict(best_state)
        return self.history
