"""MAML-based pre-training (Algorithm 1 of the paper).

The trainer optimises a surrogate model's *initialisation* so that a few
gradient steps on a small support set produce good predictions on the query
set of the same task.  Structure of one meta-iteration:

* sample a batch of tasks (episodes) from the source workloads;
* **inner loop** — for each task, copy the current parameters ``theta`` into
  ``theta_hat`` and take ``inner_steps`` SGD steps on the support loss
  (Algorithm 1 lines 4-12);
* **outer loop** — evaluate each adapted copy on its query set, average the
  resulting gradients and apply them to ``theta`` with Adam
  (Algorithm 1 lines 13-14).

Two meta-gradient flavours are implemented:

* ``"fomaml"`` (default) — first-order MAML: the query-set gradient with
  respect to the adapted parameters is applied directly to the initial
  parameters, dropping the second-order term.  This is the standard
  practical approximation of the full MAML update and is what makes the
  numpy implementation tractable.
* ``"reptile"`` — the Reptile update ``theta <- theta + eps * (theta_hat - theta)``,
  provided as an ablation of the meta-gradient choice.

Both flavours run **task-batched**: the meta-batch's episodes are stacked on
a leading task axis, ``theta`` is stacked into a ``theta_hat`` bank via
:meth:`Module.stack_parameters`, and the whole inner loop plus the query
pass execute as one stacked-tensor graph through
:meth:`Module.functional_call` — a vmap-style evaluation where task ``t``'s
samples only ever meet parameter slice ``t``.  The original one-task-at-a-
time loop survives as :meth:`MAMLTrainer.meta_step_scalar` (with
:meth:`MAMLTrainer.adapt_scalar` as its inner loop): it is the executable
specification the equivalence tests compare the batched path against,
mirroring the simulation substrate's ``run_scalar`` pattern, and the
fallback for ragged batches whose episode sizes differ.

After every epoch a meta-validation pass measures post-adaptation query loss
on the validation workloads; the best-performing parameters are restored at
the end (the paper's "identify the optimal parameters for downstream tasks").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.datasets.tasks import Task, TaskSampler
from repro.nn.losses import mse_loss
from repro.nn.module import Module, has_task_axis
from repro.nn.optim import SGD, Adam, clip_grad_norm, stacked_sgd_step
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng

#: Meta-gradient flavours supported by :class:`MAMLTrainer`.
ALGORITHMS = ("fomaml", "reptile")


@dataclass
class MAMLConfig:
    """Hyper-parameters of the MAML pre-training stage.

    The defaults are tuned for the synthetic substrate and single-core CPU
    training; :data:`PAPER_MAML_CONFIG` records the values quoted in
    Section VI-A of the paper.
    """

    inner_lr: float = 0.02
    outer_lr: float = 2e-3
    inner_steps: int = 5
    meta_epochs: int = 15
    tasks_per_workload: int = 200
    meta_batch_size: int = 4
    support_size: int = 5
    query_size: int = 45
    grad_clip: float = 10.0
    algorithm: str = "fomaml"
    #: Reptile interpolation rate (only used when ``algorithm == "reptile"``).
    reptile_epsilon: float = 0.5
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; choose from {ALGORITHMS}"
            )
        if self.inner_lr <= 0 or self.outer_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.inner_steps < 1:
            raise ValueError("inner_steps must be >= 1")
        if self.meta_epochs < 1:
            raise ValueError("meta_epochs must be >= 1")
        if self.meta_batch_size < 1:
            raise ValueError("meta_batch_size must be >= 1")


#: The exact hyper-parameters reported in Section VI-A of the paper.
PAPER_MAML_CONFIG = MAMLConfig(
    inner_lr=1e-5,
    outer_lr=1e-4,
    inner_steps=5,
    meta_epochs=15,
    tasks_per_workload=200,
    support_size=5,
    query_size=45,
)


@dataclass
class MetaTrainingHistory:
    """Per-epoch record of the meta-training run."""

    train_losses: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_validation_loss: float = float("inf")
    total_tasks: int = 0

    @property
    def num_epochs(self) -> int:
        """Number of completed epochs."""
        return len(self.train_losses)


def _per_task_mse(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Per-task MSE over stacked episodes: ``(n_tasks, samples) -> (n_tasks,)``.

    Each task's entry equals the scalar :func:`mse_loss` of its slice, so the
    sum over tasks backpropagates exactly the per-task gradients.  Targets
    are folded to the predictions' dtype so a float32 forward pass keeps a
    float32 loss graph.
    """
    diff = predictions - Tensor(targets, dtype=predictions.data.dtype)
    return (diff * diff).mean(axis=-1)


def _stack_episodes(
    tasks: Sequence[Task],
    dtype: np.dtype = np.float64,
) -> Optional[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Stack a task batch's arrays on a leading task axis, in *dtype*.

    Returns ``(support_x, support_y, query_x, query_y)`` with shapes
    ``(n_tasks, S, P) / (n_tasks, S) / (n_tasks, Q, P) / (n_tasks, Q)``, or
    ``None`` when the batch is ragged (episode sizes differ), in which case
    callers fall back to the scalar reference path.  The trainer passes its
    model's dtype so a float32 surrogate trains on float32 episode arrays.
    """
    if len({t.support_x.shape for t in tasks}) > 1 or len(
        {t.query_x.shape for t in tasks}
    ) > 1:
        return None
    return (
        np.stack([np.asarray(t.support_x, dtype=dtype) for t in tasks]),
        np.stack([np.asarray(t.support_y, dtype=dtype) for t in tasks]),
        np.stack([np.asarray(t.query_x, dtype=dtype) for t in tasks]),
        np.stack([np.asarray(t.query_y, dtype=dtype) for t in tasks]),
    )


class MAMLTrainer:
    """Meta-trains a surrogate model per Algorithm 1 (task-batched)."""

    def __init__(self, model: Module, config: Optional[MAMLConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else MAMLConfig()
        self.rng = as_rng(self.config.seed)
        self.outer_optimizer = Adam(model.parameters(), self.config.outer_lr)
        self.history = MetaTrainingHistory()
        #: Stacked support-set gradients of the last inner step, keyed by
        #: parameter name (``(n_tasks, *shape)`` arrays).  Only captured when
        #: :attr:`_capture_support_grads` is set — Meta-SGD consumes them for
        #: its learning-rate meta-update; the base trainer skips the capture
        #: to keep the inner loop free of dead work.
        self._last_support_grads: dict[str, np.ndarray] = {}
        self._capture_support_grads = False

    # -- variant hooks ---------------------------------------------------------
    def _inner_parameter_names(self) -> Optional[set[str]]:
        """Names of the parameters the inner loop adapts; ``None`` = all.

        Parameters outside this set stay at ``theta`` during adaptation:
        they are bound *shared* (unstacked, frozen) across the task axis.
        ANIL restricts this set to the prediction head.
        """
        return None

    def _inner_update(self, params: dict[str, Tensor], lr: float) -> dict[str, Tensor]:
        """One inner-loop update over the stacked parameters.

        The default is the plain SGD step of Algorithm 1 line 9; Meta-SGD
        overrides it with per-parameter meta-learned rates.
        """
        return stacked_sgd_step(params, lr)

    # -- inner loop -----------------------------------------------------------
    def adapt_batch(
        self,
        support_x: np.ndarray,
        support_y: np.ndarray,
        *,
        model: Optional[Module] = None,
        steps: Optional[int] = None,
        lr: Optional[float] = None,
    ) -> dict[str, Tensor]:
        """Adapt a whole stack of tasks in one graph (Algorithm 1 lines 4-12).

        *support_x* is ``(n_tasks, S, P)`` and *support_y* ``(n_tasks, S)``.
        Returns the bank of adapted parameters ``theta_hat``: a mapping from
        qualified name to an ``(n_tasks, *shape)`` gradient-requiring leaf
        for inner-loop parameters, or a shared frozen tensor for parameters
        the inner loop leaves at ``theta``.  The source model is untouched.
        """
        source = model if model is not None else self.model
        steps = steps if steps is not None else self.config.inner_steps
        lr = lr if lr is not None else self.config.inner_lr
        support_x = np.asarray(support_x, dtype=source.dtype)
        support_y = np.asarray(support_y, dtype=source.dtype)
        if support_x.ndim != 3 or support_y.ndim != 2:
            raise ValueError(
                "adapt_batch expects stacked episodes: support_x (n_tasks, S, P) "
                f"and support_y (n_tasks, S), got {support_x.shape} / {support_y.shape}"
            )
        n_tasks = support_x.shape[0]
        params = source.stack_parameters(n_tasks, names=self._inner_parameter_names())
        for name, parameter in source.named_parameters():
            if name not in params:
                params[name] = Tensor(parameter.data)  # shared, frozen at theta

        x = Tensor(support_x)
        for _ in range(steps):
            predictions = source.functional_call(params, x)
            loss = _per_task_mse(predictions, support_y).sum()
            loss.backward()
            if self._capture_support_grads:
                # The grad arrays belong to leaves the update discards, so
                # referencing them (no copy) is safe.
                self._last_support_grads = {
                    name: tensor.grad
                    for name, tensor in params.items()
                    if tensor.grad is not None
                }
            params = self._inner_update(params, lr)
        return params

    def adapt(
        self,
        support_x: np.ndarray,
        support_y: np.ndarray,
        *,
        model: Optional[Module] = None,
        steps: Optional[int] = None,
        lr: Optional[float] = None,
    ) -> Module:
        """Clone the model and adapt it to one support set.

        A batch-of-one wrapper over :meth:`adapt_batch` (the single-task
        analogue of the substrate's ``run``/``run_batch`` pairing); returns
        the adapted copy, the original model is left untouched
        (Algorithm 1 line 5: ``theta_hat = theta``).
        """
        source = model if model is not None else self.model
        support_x = np.asarray(support_x, dtype=source.dtype)
        support_y = np.asarray(support_y, dtype=source.dtype)
        params = self.adapt_batch(
            support_x[None], support_y[None], model=model, steps=steps, lr=lr
        )
        adapted = source.clone()
        adapted.load_state_dict(source.unstack_state(params, 0))
        return adapted

    def adapt_scalar(
        self,
        support_x: np.ndarray,
        support_y: np.ndarray,
        *,
        model: Optional[Module] = None,
        steps: Optional[int] = None,
        lr: Optional[float] = None,
    ) -> Module:
        """Reference inner loop: clone the model and run per-task SGD.

        The executable specification :meth:`adapt_batch` is tested against
        (and the inner loop of :meth:`meta_step_scalar`).
        """
        source = model if model is not None else self.model
        steps = steps if steps is not None else self.config.inner_steps
        lr = lr if lr is not None else self.config.inner_lr
        adapted = source.clone()
        optimizer = SGD(adapted.parameters(), lr)
        x = Tensor(np.asarray(support_x, dtype=source.dtype))
        y = np.asarray(support_y, dtype=source.dtype)
        for _ in range(steps):
            optimizer.zero_grad()
            loss = mse_loss(adapted(x), y)
            loss.backward()
            optimizer.step()
        return adapted

    # -- outer loop -----------------------------------------------------------
    def meta_step(self, tasks: Sequence[Task]) -> float:
        """One outer-loop update over a batch of tasks; returns the meta-loss.

        The whole meta-batch runs as one stacked graph: inner loop via
        :meth:`adapt_batch`, then a single query pass whose per-task losses
        are summed so one backward produces every task's query gradient.
        Ragged batches (mixed episode sizes) fall back to
        :meth:`meta_step_scalar`.
        """
        if not tasks:
            raise ValueError("meta_step needs at least one task")
        batch = _stack_episodes(tasks, dtype=self.model.dtype)
        if batch is None:
            return self.meta_step_scalar(tasks)
        support_x, support_y, query_x, query_y = batch
        n_tasks = len(tasks)
        own = dict(self.model.named_parameters())

        adapted = self.adapt_batch(support_x, support_y)
        # Rebind shared (frozen) entries as gradient-requiring leaves so the
        # query gradient reaches them too; their ``.grad`` then accumulates
        # the sum over tasks directly.  Stacked entries are fresh leaves
        # already (the last inner update detached them).
        query_params = {
            name: tensor
            if tensor.requires_grad
            else Tensor(tensor.data, requires_grad=True, name=name)
            for name, tensor in adapted.items()
        }
        predictions = self.model.functional_call(query_params, Tensor(query_x))
        per_task_loss = _per_task_mse(predictions, query_y)
        total_loss = float(per_task_loss.data.sum())

        meta_grads: dict[str, np.ndarray] = {}
        if self.config.algorithm == "fomaml":
            per_task_loss.sum().backward()
            for name, tensor in query_params.items():
                grad = tensor.grad
                if grad is None:
                    meta_grads[name] = np.zeros_like(own[name].data)
                elif has_task_axis(tensor.data, own[name]):
                    meta_grads[name] = grad.sum(axis=0)
                else:
                    meta_grads[name] = grad
        else:  # reptile: theta moves toward the mean adapted parameters
            factor = self.config.reptile_epsilon / max(
                self.config.inner_lr * self.config.inner_steps, 1e-12
            )
            for name, tensor in adapted.items():
                if has_task_axis(tensor.data, own[name]):
                    meta_grads[name] = (
                        own[name].data[None] - tensor.data
                    ).sum(axis=0) * factor
                else:
                    meta_grads[name] = np.zeros_like(own[name].data)

        self._apply_meta_grads(meta_grads, scale=1.0 / n_tasks)
        return total_loss / n_tasks

    def meta_step_scalar(self, tasks: Sequence[Task]) -> float:
        """Reference outer loop: one task at a time, one graph per task.

        Kept as the executable specification of :meth:`meta_step` — the
        equivalence tests assert that the task-batched path reproduces these
        updates, and the meta-training throughput benchmark measures the
        batched speed-up against this loop.
        """
        if not tasks:
            raise ValueError("meta_step needs at least one task")
        meta_grads = {
            name: np.zeros_like(p.data) for name, p in self.model.named_parameters()
        }
        total_loss = 0.0

        for task in tasks:
            adapted = self.adapt_scalar(task.support_x, task.support_y)
            adapted.zero_grad()
            query_loss = mse_loss(adapted(Tensor(task.query_x)), task.query_y)
            query_loss.backward()
            total_loss += query_loss.item()

            if self.config.algorithm == "fomaml":
                for name, parameter in adapted.named_parameters():
                    if parameter.grad is not None:
                        meta_grads[name] += parameter.grad
            else:  # reptile
                original = dict(self.model.named_parameters())
                for name, parameter in adapted.named_parameters():
                    meta_grads[name] += (original[name].data - parameter.data) / max(
                        self.config.inner_lr * self.config.inner_steps, 1e-12
                    ) * self.config.reptile_epsilon

        self._apply_meta_grads(meta_grads, scale=1.0 / len(tasks))
        return total_loss / len(tasks)

    def _apply_meta_grads(self, meta_grads: dict[str, np.ndarray], *, scale: float) -> None:
        """Install averaged meta-gradients and take the Adam outer step."""
        self.outer_optimizer.zero_grad()
        for name, parameter in self.model.named_parameters():
            parameter.grad = meta_grads[name] * scale
        if self.config.grad_clip > 0:
            clip_grad_norm(self.model.parameters(), self.config.grad_clip)
        self.outer_optimizer.step()

    # -- validation ------------------------------------------------------------
    def meta_validate(
        self,
        sampler: TaskSampler,
        workloads: Sequence[str],
        *,
        tasks_per_workload: int = 4,
    ) -> float:
        """Average post-adaptation query loss on held-out workloads.

        The validation episodes are adapted and evaluated as one stacked
        batch (no gradients are needed, so the query pass binds detached
        parameters and builds no graph).
        """
        if not workloads:
            raise ValueError("meta_validate needs at least one workload")
        tasks = sampler.sample_batch(workloads, tasks_per_workload=tasks_per_workload)
        batch = _stack_episodes(tasks, dtype=self.model.dtype)
        if batch is None:
            losses = []
            for task in tasks:
                adapted = self.adapt(task.support_x, task.support_y)
                predictions = adapted(Tensor(task.query_x))
                losses.append(mse_loss(predictions, task.query_y).item())
            return float(np.mean(losses))
        support_x, support_y, query_x, query_y = batch
        adapted = self.adapt_batch(support_x, support_y)
        frozen = {name: Tensor(tensor.data) for name, tensor in adapted.items()}
        predictions = self.model.functional_call(frozen, Tensor(query_x))
        return float(_per_task_mse(predictions, query_y).data.mean())

    # -- full training loop -------------------------------------------------------
    def meta_train(
        self,
        sampler: TaskSampler,
        train_workloads: Sequence[str],
        validation_workloads: Optional[Sequence[str]] = None,
        *,
        epoch_callback: Optional[Callable[[int, float, Optional[float]], None]] = None,
    ) -> MetaTrainingHistory:
        """Run the full pre-training loop of Algorithm 1.

        Parameters
        ----------
        sampler:
            Episodic task sampler over the labelled dataset.  Its support and
            query sizes are used as-is (they may differ from the config when
            a sensitivity study overrides them).
        train_workloads, validation_workloads:
            Source and meta-validation workload names.
        epoch_callback:
            Optional ``f(epoch, train_loss, validation_loss)`` hook, useful
            for logging and early-stopping experiments.
        """
        if not train_workloads:
            raise ValueError("meta_train needs at least one training workload")
        best_state = self.model.state_dict()
        for epoch in range(self.config.meta_epochs):
            epoch_losses = []
            for batch in sampler.iterate_epoch(
                train_workloads,
                tasks_per_workload=self.config.tasks_per_workload,
                batch_size=self.config.meta_batch_size,
            ):
                epoch_losses.append(self.meta_step(batch))
                self.history.total_tasks += len(batch)
            train_loss = float(np.mean(epoch_losses))
            self.history.train_losses.append(train_loss)

            validation_loss: Optional[float] = None
            if validation_workloads:
                validation_loss = self.meta_validate(sampler, validation_workloads)
                self.history.validation_losses.append(validation_loss)
                if validation_loss < self.history.best_validation_loss:
                    self.history.best_validation_loss = validation_loss
                    self.history.best_epoch = epoch
                    best_state = self.model.state_dict()
            if epoch_callback is not None:
                epoch_callback(epoch, train_loss, validation_loss)

        if validation_workloads and self.history.best_epoch >= 0:
            self.model.load_state_dict(best_state)
        return self.history
