"""Downstream adaptation (Algorithm 2 of the paper).

Given the meta-trained predictor ``f_theta*`` and a handful of labelled
samples from the *target* workload, the adaptation stage:

1. optionally installs the workload-adaptive architectural mask in the
   self-attention operator and marks it trainable (Algorithm 2 lines 1-2);
2. clones the meta-trained parameters (``theta_hat* = theta*``);
3. runs a small number of gradient steps on the target support set with a
   low learning rate and cosine annealing (Section VI-A: ten steps,
   ``1e-5`` with cosine annealing in the paper's setup);
4. returns the adapted predictor, which is then evaluated on unseen target
   design points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.meta.wam import ArchitecturalMask
from repro.nn.losses import mse_loss
from repro.nn.optim import SGD, Adam, CosineAnnealingLR, StackedSGD
from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerPredictor


@dataclass
class AdaptationConfig:
    """Hyper-parameters of the adaptation stage.

    The defaults are tuned for the synthetic substrate;
    :data:`PAPER_ADAPTATION_CONFIG` records the paper's quoted values.
    """

    steps: int = 10
    lr: float = 0.01
    cosine_annealing: bool = True
    optimizer: str = "sgd"
    #: Install the WAM mask on every attention layer instead of the last one.
    mask_all_layers: bool = False
    #: Make the installed mask trainable (Algorithm 2 line 2).
    learnable_mask: bool = True
    #: Learning-rate multiplier for the mask parameters.  The mask is a small,
    #: structured set of knobs (one per parameter pair), so letting it move
    #: faster than the backbone weights is what makes it *workload-adaptive*
    #: within the ten-step adaptation budget.
    mask_lr_multiplier: float = 10.0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(f"optimizer must be 'sgd' or 'adam', got {self.optimizer!r}")
        if self.mask_lr_multiplier <= 0:
            raise ValueError("mask_lr_multiplier must be positive")


#: The adaptation hyper-parameters quoted in Section VI-A of the paper.
PAPER_ADAPTATION_CONFIG = AdaptationConfig(steps=10, lr=1e-5, cosine_annealing=True)


@dataclass
class AdaptationResult:
    """The adapted predictor plus its adaptation trajectory."""

    predictor: TransformerPredictor
    support_losses: list[float]
    used_mask: bool

    @property
    def final_support_loss(self) -> float:
        """Support-set loss after the last adaptation step."""
        return self.support_losses[-1]


def adapt_predictor(
    meta_trained: TransformerPredictor,
    support_x: np.ndarray,
    support_y: np.ndarray,
    *,
    mask: Optional[ArchitecturalMask] = None,
    config: Optional[AdaptationConfig] = None,
) -> AdaptationResult:
    """Run Algorithm 2 and return the adapted predictor.

    The meta-trained model is never modified: adaptation operates on a clone
    so the same initialisation can be reused for many target workloads (or
    many support sizes, as in Table III).  With the default SGD optimiser the
    call is a batch-of-one wrapper over :func:`adapt_predictor_batch` (the
    stacked functional path); Adam keeps the stateful per-model loop.
    """
    config = config if config is not None else AdaptationConfig()
    if config.optimizer == "sgd":
        return adapt_predictor_batch(
            meta_trained,
            [(support_x, support_y)],
            mask=mask,
            config=config,
        )[0]
    return _adapt_predictor_stateful(
        meta_trained, support_x, support_y, mask=mask, config=config
    )


def adapt_predictor_batch(
    meta_trained: TransformerPredictor,
    supports: Sequence[tuple[np.ndarray, np.ndarray]],
    *,
    mask: Optional[ArchitecturalMask] = None,
    config: Optional[AdaptationConfig] = None,
) -> list[AdaptationResult]:
    """Adapt the meta-trained predictor to many target tasks in one graph.

    *supports* is a sequence of ``(support_x, support_y)`` pairs — one per
    target workload (or per support-size sweep point).  The meta-trained
    parameters are stacked along a leading task axis and every target's
    fine-tuning runs in the same stacked-tensor graph, exactly like the
    batched MAML inner loop.  Targets with ragged support sizes, or an Adam
    config, fall back to the per-target loop.  Returns one
    :class:`AdaptationResult` per target, in input order.
    """
    config = config if config is not None else AdaptationConfig()
    dtype = meta_trained.dtype  # fine-tune in the meta-trained model's precision
    supports = [
        (
            np.asarray(sx, dtype=dtype),
            np.asarray(sy, dtype=dtype),
        )
        for sx, sy in supports
    ]
    if not supports:
        raise ValueError("adapt_predictor_batch needs at least one support set")
    ragged = len({sx.shape for sx, _ in supports}) > 1
    if config.optimizer != "sgd" or ragged:
        return [
            _adapt_predictor_stateful(meta_trained, sx, sy, mask=mask, config=config)
            for sx, sy in supports
        ]

    template: TransformerPredictor = meta_trained.clone()
    used_mask = False
    if mask is not None:
        template.install_mask(
            mask.bias,
            learnable=config.learnable_mask,
            all_layers=config.mask_all_layers,
        )
        used_mask = True

    n_tasks = len(supports)
    params = template.stack_parameters(n_tasks)
    lr_scales = {
        name: config.mask_lr_multiplier
        for name in params
        if name.endswith(".mask") or name == "mask"
    }
    optimizer = StackedSGD(config.lr, lr_scales=lr_scales)
    scheduler = (
        CosineAnnealingLR(optimizer, config.steps) if config.cosine_annealing else None
    )

    x = Tensor(np.stack([sx for sx, _ in supports]))
    y = np.stack([sy for _, sy in supports])
    step_losses: list[np.ndarray] = []
    for _ in range(config.steps):
        predictions = template.functional_call(params, x)
        diff = predictions - Tensor(y)
        per_task = (diff * diff).mean(axis=-1)
        per_task.sum().backward()
        params = optimizer.step(params)
        if scheduler is not None:
            scheduler.step()
        step_losses.append(per_task.data.copy())

    results: list[AdaptationResult] = []
    for index in range(n_tasks):
        predictor: TransformerPredictor = template.clone()
        predictor.load_state_dict(template.unstack_state(params, index))
        predictor.eval()
        results.append(
            AdaptationResult(
                predictor=predictor,
                support_losses=[float(losses[index]) for losses in step_losses],
                used_mask=used_mask,
            )
        )
    return results


def _adapt_predictor_stateful(
    meta_trained: TransformerPredictor,
    support_x: np.ndarray,
    support_y: np.ndarray,
    *,
    mask: Optional[ArchitecturalMask],
    config: AdaptationConfig,
) -> AdaptationResult:
    """Per-model reference loop (and the Adam path, which carries state)."""
    predictor: TransformerPredictor = meta_trained.clone()

    used_mask = False
    if mask is not None:
        predictor.install_mask(
            mask.bias,
            learnable=config.learnable_mask,
            all_layers=config.mask_all_layers,
        )
        used_mask = True

    parameters = list(predictor.named_parameters())
    lr_scales = [
        config.mask_lr_multiplier if name.endswith(".mask") or name == "mask" else 1.0
        for name, _ in parameters
    ]
    tensors = [tensor for _, tensor in parameters]
    if config.optimizer == "adam":
        optimizer = Adam(tensors, config.lr, lr_scales=lr_scales)
    else:
        optimizer = SGD(tensors, config.lr, lr_scales=lr_scales)
    scheduler = (
        CosineAnnealingLR(optimizer, config.steps) if config.cosine_annealing else None
    )

    x = Tensor(np.asarray(support_x, dtype=predictor.dtype))
    y = np.asarray(support_y, dtype=predictor.dtype)
    losses: list[float] = []
    for _ in range(config.steps):
        optimizer.zero_grad()
        loss = mse_loss(predictor(x), y)
        loss.backward()
        optimizer.step()
        if scheduler is not None:
            scheduler.step()
        losses.append(loss.item())
    predictor.eval()
    return AdaptationResult(predictor=predictor, support_losses=losses, used_mask=used_mask)
