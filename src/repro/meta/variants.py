"""Meta-learning variants used as ablations of the MAML pre-training stage.

The paper commits to MAML (Algorithm 1); these variants answer the natural
follow-up questions an adopter would ask, and back the
``benchmarks/test_ablation_meta_variants.py`` study:

* :class:`ANILTrainer` — *Almost No Inner Loop*: the inner loop adapts only
  the prediction head while the transformer body is updated exclusively by
  the outer loop.  Tests whether rapid adaptation needs to touch the
  attention layers at all.
* :class:`MetaSGDTrainer` — Meta-SGD: a per-parameter inner-loop learning
  rate is meta-learned alongside the initialisation, using the standard
  first-order approximation of the learning-rate gradient
  (``d L_query / d alpha ≈ -g_query ⊙ g_support``).

Both reuse the episodic machinery of :class:`~repro.meta.maml.MAMLTrainer`
(task sampling, meta-validation, best-epoch restoration), so they drop into
:class:`~repro.core.metadse.MetaDSE`-style experiments unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.meta.maml import MAMLConfig, MAMLTrainer, _per_task_mse, _stack_episodes
from repro.nn.losses import mse_loss
from repro.nn.module import Module
from repro.nn.optim import SGD, clip_grad_norm
from repro.nn.tensor import Tensor

#: Parameter-name prefix that identifies the prediction head of the
#: :class:`~repro.nn.transformer.TransformerPredictor`.
DEFAULT_HEAD_PREFIX = "head."


class ANILTrainer(MAMLTrainer):
    """MAML with the inner loop restricted to the prediction head (ANIL).

    Rides the task-batched engine unchanged: the head parameters are stacked
    per task while the transformer body stays bound *shared* across the task
    axis, so one graph adapts every head of the meta-batch and the query
    backward still reaches (and meta-updates) the shared body.
    """

    def __init__(
        self,
        model: Module,
        config: Optional[MAMLConfig] = None,
        *,
        head_prefix: str = DEFAULT_HEAD_PREFIX,
    ) -> None:
        super().__init__(model, config)
        self.head_prefix = head_prefix
        if not any(name.startswith(head_prefix) for name, _ in model.named_parameters()):
            raise ValueError(
                f"model has no parameters with prefix {head_prefix!r}; "
                "ANIL needs an identifiable head"
            )

    def _inner_parameter_names(self) -> Optional[set[str]]:
        """Only the prediction head adapts in the inner loop."""
        return {
            name
            for name, _ in self.model.named_parameters()
            if name.startswith(self.head_prefix)
        }

    def adapt_scalar(
        self,
        support_x: np.ndarray,
        support_y: np.ndarray,
        *,
        model: Optional[Module] = None,
        steps: Optional[int] = None,
        lr: Optional[float] = None,
    ) -> Module:
        """Reference inner loop over the head parameters only."""
        source = model if model is not None else self.model
        steps = steps if steps is not None else self.config.inner_steps
        lr = lr if lr is not None else self.config.inner_lr
        adapted = source.clone()
        head_parameters = [
            parameter
            for name, parameter in adapted.named_parameters()
            if name.startswith(self.head_prefix)
        ]
        optimizer = SGD(head_parameters, lr)
        x = Tensor(np.asarray(support_x, dtype=source.dtype))
        y = np.asarray(support_y, dtype=source.dtype)
        for _ in range(steps):
            optimizer.zero_grad()
            loss = mse_loss(adapted(x), y)
            loss.backward()
            optimizer.step()
        return adapted


class MetaSGDTrainer(MAMLTrainer):
    """MAML with meta-learned per-parameter inner learning rates (Meta-SGD).

    Parameters
    ----------
    model:
        The surrogate predictor to meta-train.
    config:
        Shared MAML hyper-parameters.  ``config.inner_lr`` seeds every
        per-parameter learning rate.
    alpha_lr:
        Step size of the learning-rate meta-update.
    alpha_bounds:
        Hard clamp on every per-parameter learning rate, keeping the inner
        loop stable even when the first-order alpha gradient is noisy.
    """

    def __init__(
        self,
        model: Module,
        config: Optional[MAMLConfig] = None,
        *,
        alpha_lr: float = 1e-3,
        alpha_bounds: tuple[float, float] = (1e-6, 1.0),
    ) -> None:
        super().__init__(model, config)
        if alpha_lr <= 0:
            raise ValueError("alpha_lr must be > 0")
        low, high = alpha_bounds
        if not 0 < low < high:
            raise ValueError("alpha_bounds must satisfy 0 < low < high")
        self.alpha_lr = alpha_lr
        self.alpha_bounds = alpha_bounds
        self._capture_support_grads = True  # the alpha meta-update needs them
        self.alphas: dict[str, np.ndarray] = {
            name: np.full_like(parameter.data, self.config.inner_lr)
            for name, parameter in model.named_parameters()
        }

    # -- inner loop with per-parameter rates -------------------------------------
    def _inner_update(self, params: dict, lr: Optional[float]) -> dict:
        """Stacked inner update where every parameter uses its learned rate.

        The per-parameter rates ``alpha`` broadcast over the leading task
        axis; *lr*, when it differs from the configured inner rate, scales
        every rate uniformly (used by downstream adaptation sweeps — in
        particular ``lr=0`` freezes the inner loop entirely).
        """
        scale = 1.0 if lr is None else lr / max(self.config.inner_lr, 1e-12)
        updated: dict = {}
        for name, parameter in params.items():
            if not parameter.requires_grad or parameter.grad is None:
                updated[name] = parameter
                continue
            updated[name] = Tensor(
                parameter.data - scale * self.alphas[name] * parameter.grad,
                requires_grad=True,
                name=name,
            )
        return updated

    def adapt_scalar(
        self,
        support_x: np.ndarray,
        support_y: np.ndarray,
        *,
        model: Optional[Module] = None,
        steps: Optional[int] = None,
        lr: Optional[float] = None,
    ) -> Module:
        """Reference inner loop where every parameter uses its learned rate."""
        source = model if model is not None else self.model
        steps = steps if steps is not None else self.config.inner_steps
        scale = 1.0 if lr is None else lr / max(self.config.inner_lr, 1e-12)
        adapted = source.clone()
        x = Tensor(np.asarray(support_x, dtype=source.dtype))
        y = np.asarray(support_y, dtype=source.dtype)
        support_grads: dict[str, np.ndarray] = {}
        for _ in range(steps):
            adapted.zero_grad()
            loss = mse_loss(adapted(x), y)
            loss.backward()
            for name, parameter in adapted.named_parameters():
                if parameter.grad is None:
                    continue
                support_grads[name] = parameter.grad.copy()
                parameter.data = parameter.data - scale * self.alphas[name] * parameter.grad
        self._last_support_grads = support_grads
        return adapted

    # -- outer loop: update theta and alpha ----------------------------------------
    def meta_step(self, tasks: Sequence) -> float:
        """One outer-loop update of both the initialisation and the rates.

        Task-batched like :meth:`MAMLTrainer.meta_step`: the stacked query
        backward yields every task's query gradient at once, and the
        first-order alpha gradient ``-g_query ⊙ g_support`` is formed from
        the stacked gradient banks before summing over the task axis.
        """
        if not tasks:
            raise ValueError("meta_step needs at least one task")
        batch = _stack_episodes(tasks, dtype=self.model.dtype)
        if batch is None:
            return self.meta_step_scalar(tasks)
        support_x, support_y, query_x, query_y = batch
        n_tasks = len(tasks)

        adapted = self.adapt_batch(support_x, support_y)
        support_grads = self._last_support_grads
        predictions = self.model.functional_call(adapted, Tensor(query_x))
        per_task_loss = _per_task_mse(predictions, query_y)
        total_loss = float(per_task_loss.data.sum())
        per_task_loss.sum().backward()

        meta_grads: dict[str, np.ndarray] = {}
        alpha_grads = {name: np.zeros_like(value) for name, value in self.alphas.items()}
        for name, parameter in self.model.named_parameters():
            grad = adapted[name].grad
            if grad is None:
                meta_grads[name] = np.zeros_like(parameter.data)
                continue
            meta_grads[name] = grad.sum(axis=0)
            if name in support_grads:
                # First-order Meta-SGD: d L_q / d alpha = -g_query * g_support.
                alpha_grads[name] = -(grad * support_grads[name]).sum(axis=0)

        scale = 1.0 / n_tasks
        self._apply_meta_grads(meta_grads, scale=scale)
        low, high = self.alpha_bounds
        for name in self.alphas:
            self.alphas[name] = np.clip(
                self.alphas[name] - self.alpha_lr * alpha_grads[name] * scale, low, high
            )
        return total_loss / n_tasks

    def meta_step_scalar(self, tasks: Sequence) -> float:
        """Reference outer loop of the rate meta-update, one task at a time."""
        if not tasks:
            raise ValueError("meta_step needs at least one task")
        meta_grads = {
            name: np.zeros_like(parameter.data)
            for name, parameter in self.model.named_parameters()
        }
        alpha_grads = {name: np.zeros_like(value) for name, value in self.alphas.items()}
        total_loss = 0.0

        for task in tasks:
            adapted = self.adapt_scalar(task.support_x, task.support_y)
            support_grads = self._last_support_grads
            adapted.zero_grad()
            query_loss = mse_loss(adapted(Tensor(task.query_x)), task.query_y)
            query_loss.backward()
            total_loss += query_loss.item()
            for name, parameter in adapted.named_parameters():
                if parameter.grad is None:
                    continue
                meta_grads[name] += parameter.grad
                if name in support_grads:
                    # First-order Meta-SGD: d L_q / d alpha = -g_query * g_support.
                    alpha_grads[name] += -parameter.grad * support_grads[name]

        scale = 1.0 / len(tasks)
        self._apply_meta_grads(meta_grads, scale=scale)
        low, high = self.alpha_bounds
        for name in self.alphas:
            self.alphas[name] = np.clip(
                self.alphas[name] - self.alpha_lr * alpha_grads[name] * scale, low, high
            )
        return total_loss / len(tasks)

    def mean_alpha(self) -> float:
        """Average learned inner-loop rate (a convergence diagnostic)."""
        total = sum(float(value.sum()) for value in self.alphas.values())
        count = sum(value.size for value in self.alphas.values())
        return total / max(count, 1)


#: Trainer registry used by the ablation benchmark and the CLI.
META_TRAINER_VARIANTS = ("fomaml", "reptile", "anil", "metasgd")


def make_meta_trainer(
    variant: str, model: Module, config: Optional[MAMLConfig] = None
) -> MAMLTrainer:
    """Build the requested meta-training variant.

    ``"fomaml"`` and ``"reptile"`` map onto :class:`~repro.meta.maml.MAMLTrainer`
    with the corresponding meta-gradient flavour; ``"anil"`` and ``"metasgd"``
    return the specialised trainers from this module.
    """
    from dataclasses import replace

    config = config if config is not None else MAMLConfig()
    if variant in ("fomaml", "reptile"):
        return MAMLTrainer(model, replace(config, algorithm=variant))
    if variant == "anil":
        return ANILTrainer(model, replace(config, algorithm="fomaml"))
    if variant == "metasgd":
        return MetaSGDTrainer(model, replace(config, algorithm="fomaml"))
    raise ValueError(
        f"unknown meta-trainer variant {variant!r}; choose from {META_TRAINER_VARIANTS}"
    )
