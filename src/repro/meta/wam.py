"""Workload-adaptive Architectural Mask (WAM) generation.

Section IV-C / Fig. 4 of the paper: during pre-training, the attention
weights of the *last* self-attention layer are recorded for many episodes
drawn from the source workloads ("mask candidates").  Parameter interactions
that occur with high frequency across diverse workloads are kept; the rest
are treated as noise and suppressed.  The resulting mask is installed as an
additive bias on the attention logits and is itself trainable during the
adaptation stage (Algorithm 2 lines 1-2).

Design choices made explicit:

* "frequency" is measured as the average attention probability a (query
  parameter, key parameter) pair receives, averaged over batches, heads and
  source workloads;
* a pair is *relevant* when its average attention exceeds the given quantile
  of all pairs (default: the median), mirroring the paper's "high-frequency
  correlations";
* suppressed pairs receive a negative logit bias (``-penalty``) rather than
  ``-inf`` so the adaptation stage can revive an interaction that turns out
  to matter for the target workload — this is what makes the mask
  *workload-adaptive* rather than a hard structural prune.

Beyond the mask, the harvested attention carries a second signal
(AttentionDSE, arXiv:2410.18368 — the same authors' companion paper): how
much attention each *parameter* receives identifies which design parameters
matter for a workload.  The importance-profile API at the bottom of this
module distils that into :class:`ImportanceProfile` — normalized
per-parameter scores from one task-batched forward — which the design-space
pruning layer (:class:`repro.designspace.sampling.FocusedSampler`,
:class:`repro.dse.engine.FocusedPool`) uses for *acquisition*: spending the
candidate budget on high-importance parameters while clamping or
coarse-gridding the rest.  See ``docs/pruning.md``.

Precision: the collection forwards run in the model's own dtype (a float32
surrogate is harvested in float32), but the frequency statistics accumulate
in float64 — summing thousands of small probabilities is exactly where
float32 accumulation drifts — and the distilled bias is float64;
``install_mask`` casts it to the receiving model's dtype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.datasets.tasks import TaskSampler
from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerPredictor


@dataclass
class WAMConfig:
    """Hyper-parameters of the mask-generation step."""

    #: Quantile of pair frequencies below which an interaction is suppressed.
    keep_quantile: float = 0.5
    #: Magnitude of the negative logit bias applied to suppressed pairs.
    penalty: float = 1.0
    #: Number of episodes per source workload used to collect statistics.
    episodes_per_workload: int = 4
    #: Whether the diagonal (a parameter attending to itself) is always kept.
    keep_diagonal: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.keep_quantile < 1.0:
            raise ValueError(
                f"keep_quantile must be in [0, 1), got {self.keep_quantile}"
            )
        if self.penalty < 0:
            raise ValueError(f"penalty must be >= 0, got {self.penalty}")
        if self.episodes_per_workload < 1:
            raise ValueError("episodes_per_workload must be >= 1")


@dataclass
class ArchitecturalMask:
    """The generated mask plus the statistics it was distilled from."""

    #: Additive attention-logit bias, shape (num_parameters, num_parameters).
    bias: np.ndarray
    #: Average attention frequency per (query, key) parameter pair.
    frequency: np.ndarray
    #: Boolean matrix of the interactions that were kept.
    kept: np.ndarray
    config: WAMConfig

    @property
    def num_parameters(self) -> int:
        """Number of architectural parameters (tokens)."""
        return self.bias.shape[0]

    @property
    def sparsity(self) -> float:
        """Fraction of parameter pairs that were suppressed."""
        return float(1.0 - self.kept.mean())

    def top_interactions(self, count: int = 10) -> list[tuple[int, int, float]]:
        """The *count* strongest parameter interactions as (query, key, freq)."""
        flat = np.argsort(self.frequency, axis=None)[::-1]
        result = []
        for position in flat[:count]:
            i, j = np.unravel_index(int(position), self.frequency.shape)
            result.append((int(i), int(j), float(self.frequency[i, j])))
        return result


class WAMBuilder:
    """Accumulates attention statistics and distils them into a mask."""

    def __init__(self, num_parameters: int, config: Optional[WAMConfig] = None) -> None:
        if num_parameters < 1:
            raise ValueError("num_parameters must be >= 1")
        self.num_parameters = num_parameters
        self.config = config if config is not None else WAMConfig()
        self._sum = np.zeros((num_parameters, num_parameters), dtype=np.float64)
        self._count = 0

    # -- statistics accumulation ------------------------------------------------
    def accumulate(self, attention: np.ndarray) -> None:
        """Add one recorded attention tensor to the statistics.

        Accepts ``(tokens, tokens)`` or any higher-rank tensor whose last two
        axes are ``(tokens, tokens)`` (batch/heads are averaged out).
        """
        attention = np.asarray(attention, dtype=np.float64)
        if attention.shape[-2:] != (self.num_parameters, self.num_parameters):
            raise ValueError(
                f"attention trailing shape {attention.shape[-2:]} does not match "
                f"{self.num_parameters} parameters"
            )
        while attention.ndim > 2:
            attention = attention.mean(axis=0)
        self._sum += attention
        self._count += 1

    def collect_from_model(
        self,
        model: TransformerPredictor,
        sampler: TaskSampler,
        source_workloads: Sequence[str],
    ) -> None:
        """Run the meta-trained model over source episodes and record attention.

        This is steps 1-2 of Fig. 4: the support+query samples of episodes
        from every *source* workload are pushed through the predictor and the
        last layer's attention probabilities are harvested.  Each workload's
        episodes are stacked on a leading task axis and evaluated in a single
        batched forward (the predictor's parameters are shared across the
        axis); the recorded ``(episodes, batch, heads, tokens, tokens)``
        attention is accumulated per episode so every episode keeps equal
        weight in the frequency statistics.
        """
        if not source_workloads:
            raise ValueError("collect_from_model needs at least one source workload")
        was_training = model.training
        model.eval()
        try:
            for workload in source_workloads:
                episodes = [
                    sampler.sample_task(workload)
                    for _ in range(self.config.episodes_per_workload)
                ]
                inputs = np.stack(
                    [
                        np.concatenate([task.support_x, task.query_x], axis=0)
                        for task in episodes
                    ]
                )
                model(Tensor(inputs))
                recorded = model.last_attention_layer.last_attention
                for episode_attention in recorded:
                    self.accumulate(episode_attention)
        finally:
            model.train(was_training)

    # -- distillation -----------------------------------------------------------
    @property
    def frequency(self) -> np.ndarray:
        """Average attention frequency accumulated so far."""
        if self._count == 0:
            raise RuntimeError("no attention statistics accumulated yet")
        return self._sum / self._count

    def build(self) -> ArchitecturalMask:
        """Distil the accumulated statistics into an :class:`ArchitecturalMask`."""
        frequency = self.frequency
        threshold = float(np.quantile(frequency, self.config.keep_quantile))
        kept = frequency >= threshold
        if self.config.keep_diagonal:
            np.fill_diagonal(kept, True)
        bias = np.where(kept, 0.0, -self.config.penalty)
        return ArchitecturalMask(
            bias=bias.astype(np.float64),
            frequency=frequency,
            kept=kept,
            config=self.config,
        )


def generate_wam(
    model: TransformerPredictor,
    sampler: TaskSampler,
    source_workloads: Sequence[str],
    *,
    config: Optional[WAMConfig] = None,
) -> ArchitecturalMask:
    """Convenience one-call WAM generation (Fig. 4 steps 1-3)."""
    builder = WAMBuilder(model.num_parameters, config)
    builder.collect_from_model(model, sampler, source_workloads)
    return builder.build()


# -- parameter-importance profiles (attention-guided pruning) -----------------------
@dataclass(frozen=True)
class ImportanceProfile:
    """Normalized per-parameter importance scores for one workload.

    ``scores`` is a float64 vector with one entry per architectural
    parameter (declaration order), every entry non-negative and the whole
    vector summing to 1 — the average attention each parameter *receives*
    across queries, heads and batch rows.  The profile is the acquisition
    signal of the pruning layer: :meth:`focused_parameters` picks the
    positions a :class:`~repro.designspace.sampling.FocusedSampler` keeps
    at full resolution.
    """

    scores: np.ndarray
    #: Workload the profile was harvested for (``None`` for merged profiles).
    workload: Optional[str] = None

    def __post_init__(self) -> None:
        scores = np.asarray(self.scores, dtype=np.float64)
        if scores.ndim != 1 or scores.shape[0] < 1:
            raise ValueError(
                f"scores must be a non-empty 1-D vector, got shape {scores.shape}"
            )
        if not np.all(np.isfinite(scores)) or np.any(scores < 0):
            raise ValueError("scores must be finite and non-negative")
        total = float(scores.sum())
        if total <= 0:
            raise ValueError("scores must have positive mass")
        object.__setattr__(self, "scores", scores / total)

    @property
    def num_parameters(self) -> int:
        return int(self.scores.shape[0])

    def ranking(self) -> np.ndarray:
        """Parameter positions sorted by descending score.

        Ties break on the lower position, so the ranking — and everything
        derived from it — is deterministic for equal scores.
        """
        positions = np.arange(self.num_parameters)
        return np.lexsort((positions, -self.scores))

    def top_parameters(self, count: int) -> list[int]:
        """The *count* highest-importance parameter positions, ranked."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return [int(i) for i in self.ranking()[:count]]

    def focused_parameters(self, keep_fraction: float) -> np.ndarray:
        """Boolean mask of the positions kept at full resolution.

        ``ceil(keep_fraction * num_parameters)`` parameters are focused
        (at least one); ``keep_fraction=1.0`` focuses every parameter,
        which is how the pruning layer degrades to unpruned sampling.
        """
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(
                f"keep_fraction must be in (0, 1], got {keep_fraction}"
            )
        count = max(1, int(np.ceil(keep_fraction * self.num_parameters)))
        focused = np.zeros(self.num_parameters, dtype=bool)
        focused[self.ranking()[:count]] = True
        return focused


def attention_importance(attention: np.ndarray) -> np.ndarray:
    """Per-parameter importance from recorded attention probabilities.

    Accepts any tensor whose last two axes are ``(queries, keys)`` over the
    architectural parameters (leading batch/heads/task axes are averaged
    out, in float64 like the WAM statistics).  A parameter's importance is
    the average attention it receives as a *key*; the result is normalized
    to sum to 1.
    """
    attention = np.asarray(attention, dtype=np.float64)
    if attention.ndim < 2 or attention.shape[-1] != attention.shape[-2]:
        raise ValueError(
            f"attention must end in square (queries, keys) axes, "
            f"got shape {attention.shape}"
        )
    scores = attention.mean(axis=tuple(range(attention.ndim - 1)))
    total = float(scores.sum())
    if not np.isfinite(total) or total <= 0:
        raise ValueError("attention probabilities must have positive finite mass")
    return scores / total


def importance_profile(
    model: TransformerPredictor,
    features: np.ndarray,
    *,
    workload: Optional[str] = None,
) -> ImportanceProfile:
    """Harvest a parameter-importance profile from one batched forward.

    Runs *features* (``(n, P)``, optionally with a leading task axis)
    through the predictor in eval mode — a single forward, no RNG — and
    distils the last attention layer's probabilities with
    :func:`attention_importance`.  Deterministic for a fixed model and
    feature matrix, and **bitwise invariant to the kernel thread count**
    (the ``repro.nn.parallel`` determinism contract); the layer's stored
    ``last_attention`` is restored afterwards so profile harvesting never
    perturbs WAM collection state.
    """
    was_training = model.training
    layer = model.last_attention_layer
    stored_flag = layer.store_attention
    stored_attention = layer.last_attention
    model.eval()
    layer.store_attention = True
    try:
        model(Tensor(np.asarray(features, dtype=model.dtype)))
        scores = attention_importance(layer.last_attention)
    finally:
        layer.store_attention = stored_flag
        layer.last_attention = stored_attention
        model.train(was_training)
    return ImportanceProfile(scores=scores, workload=workload)


def profile_from_predictors(
    predictors: Sequence[TransformerPredictor],
    features: np.ndarray,
    *,
    workload: Optional[str] = None,
) -> ImportanceProfile:
    """Profile averaged over several predictors of the same workload.

    A multi-objective campaign adapts one predictor per objective (IPC,
    power, ...); a parameter matters when *any* objective attends to it,
    so the per-model profiles are averaged and renormalized.
    """
    if not predictors:
        raise ValueError("profile_from_predictors needs at least one predictor")
    profiles = [
        importance_profile(model, features, workload=workload)
        for model in predictors
    ]
    return merge_profiles(profiles, workload=workload)


def merge_profiles(
    profiles: Sequence[ImportanceProfile], *, workload: Optional[str] = None
) -> ImportanceProfile:
    """Mean of several (already normalized) profiles, renormalized.

    Used to fold per-workload profiles into the single pooled profile a
    shared cross-workload candidate pool is focused with.
    """
    if not profiles:
        raise ValueError("merge_profiles needs at least one profile")
    width = profiles[0].num_parameters
    if any(profile.num_parameters != width for profile in profiles[1:]):
        raise ValueError("profiles cover different numbers of parameters")
    scores = np.mean([profile.scores for profile in profiles], axis=0)
    return ImportanceProfile(scores=scores, workload=workload)
