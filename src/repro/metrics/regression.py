"""Regression metrics of Section V (Evaluation Metrics).

Three metrics are defined by the paper:

* RMSE — root mean squared error (Eq. 1), lower is better;
* MAPE — mean absolute percentage error (Eq. 2), reported as a fraction
  multiplied by 100 in the paper's table; we return the fraction and let the
  reporting layer scale it;
* EV — explained variance (Eq. 3), higher is better (can be negative when a
  model is worse than predicting the mean).

``geometric_mean`` is used for the GEOMEAN column of Fig. 5 and
``confidence_interval`` for the ± ranges of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.utils.validation import check_finite, check_same_length


def _prepare(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    check_same_length("y_true", y_true, "y_pred", y_pred)
    if y_true.size == 0:
        raise ValueError("metrics need at least one sample")
    check_finite("y_true", y_true)
    check_finite("y_pred", y_pred)
    return y_true, y_pred


def rmse(y_true, y_pred) -> float:
    """Root mean squared error (Eq. 1)."""
    y_true, y_pred = _prepare(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def mape(y_true, y_pred, *, epsilon: float = 1e-9) -> float:
    """Mean absolute percentage error as a fraction (Eq. 2 divides by 100).

    Labels very close to zero are guarded by *epsilon* to avoid division
    blow-ups (the simulator never produces exactly-zero IPC or power, but
    standardised labels can be tiny).
    """
    y_true, y_pred = _prepare(y_true, y_pred)
    denom = np.maximum(np.abs(y_true), epsilon)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def explained_variance(y_true, y_pred) -> float:
    """Explained variance (Eq. 3); 1 is perfect, 0 matches a mean predictor."""
    y_true, y_pred = _prepare(y_true, y_pred)
    denom = float(np.sum((y_true - y_true.mean()) ** 2))
    if denom < 1e-18:
        return 0.0
    return float(1.0 - np.sum((y_true - y_pred) ** 2) / denom)


def geometric_mean(values) -> float:
    """Geometric mean of positive values (the GEOMEAN column of Fig. 5)."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("geometric_mean needs at least one value")
    if np.any(values <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(values))))


def confidence_interval(values, *, confidence: float = 0.95) -> float:
    """Half-width of the Student-t confidence interval of the mean.

    Used for the ``±`` figures in Table II.  Returns 0 for a single sample.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("confidence_interval needs at least one value")
    if values.size == 1:
        return 0.0
    sem = stats.sem(values)
    half = sem * stats.t.ppf((1.0 + confidence) / 2.0, values.size - 1)
    return float(half)


@dataclass(frozen=True)
class MetricReport:
    """RMSE / MAPE / EV of one prediction run."""

    rmse: float
    mape: float
    explained_variance: float
    num_samples: int

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary view for report tables."""
        return {
            "rmse": self.rmse,
            "mape": self.mape,
            "explained_variance": self.explained_variance,
            "num_samples": float(self.num_samples),
        }


def evaluate_predictions(y_true, y_pred) -> MetricReport:
    """Compute the full metric report of one prediction run."""
    y_true_arr, y_pred_arr = _prepare(y_true, y_pred)
    return MetricReport(
        rmse=rmse(y_true_arr, y_pred_arr),
        mape=mape(y_true_arr, y_pred_arr),
        explained_variance=explained_variance(y_true_arr, y_pred_arr),
        num_samples=int(y_true_arr.size),
    )
