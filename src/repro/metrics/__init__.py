"""Evaluation metrics used throughout the paper's experiments."""

from repro.metrics.ranking import (
    kendall_tau,
    regret_at_k,
    spearman_rho,
    top_k_recall,
)
from repro.metrics.regression import (
    MetricReport,
    confidence_interval,
    evaluate_predictions,
    explained_variance,
    geometric_mean,
    mape,
    rmse,
)

__all__ = [
    "rmse",
    "mape",
    "explained_variance",
    "geometric_mean",
    "confidence_interval",
    "MetricReport",
    "evaluate_predictions",
    "spearman_rho",
    "kendall_tau",
    "top_k_recall",
    "regret_at_k",
]
