"""Ranking-quality metrics for DSE surrogates.

For design-space exploration the surrogate's job is often not to predict IPC
exactly but to *rank* candidate configurations correctly, so the simulation
budget lands on genuinely good design points.  These metrics quantify that:

* :func:`spearman_rho` — rank correlation between predicted and true values;
* :func:`kendall_tau` — pairwise ordering agreement (tau-a);
* :func:`top_k_recall` — fraction of the true top-k configurations that the
  predicted top-k contains (what a screen-then-simulate loop actually needs);
* :func:`regret_at_k` — how much worse the best configuration inside the
  predicted top-k is than the true optimum, in label units.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_same_length


def _prepare(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=np.float64).reshape(-1)
    check_same_length("y_true", y_true, "y_pred", y_pred)
    if y_true.size == 0:
        raise ValueError("ranking metrics need at least one value")
    return y_true, y_pred


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean of their positions)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.shape[0], dtype=np.float64)
    ranks[order] = np.arange(values.shape[0], dtype=np.float64)
    # Average the ranks of tied groups.
    sorted_values = values[order]
    start = 0
    for stop in range(1, values.shape[0] + 1):
        if stop == values.shape[0] or sorted_values[stop] != sorted_values[start]:
            ranks[order[start:stop]] = (start + stop - 1) / 2.0
            start = stop
    return ranks


def spearman_rho(y_true, y_pred) -> float:
    """Spearman rank correlation in [-1, 1] (1 = identical ordering)."""
    y_true, y_pred = _prepare(y_true, y_pred)
    if y_true.size < 2:
        return 1.0
    true_ranks = _ranks(y_true)
    pred_ranks = _ranks(y_pred)
    true_centered = true_ranks - true_ranks.mean()
    pred_centered = pred_ranks - pred_ranks.mean()
    denominator = np.sqrt((true_centered ** 2).sum() * (pred_centered ** 2).sum())
    if denominator < 1e-12:
        return 0.0
    return float((true_centered * pred_centered).sum() / denominator)


def kendall_tau(y_true, y_pred) -> float:
    """Kendall's tau-a: (concordant - discordant) pairs / all pairs."""
    y_true, y_pred = _prepare(y_true, y_pred)
    n = y_true.size
    if n < 2:
        return 1.0
    true_sign = np.sign(y_true[:, None] - y_true[None, :])
    pred_sign = np.sign(y_pred[:, None] - y_pred[None, :])
    upper = np.triu_indices(n, k=1)
    agreement = true_sign[upper] * pred_sign[upper]
    total_pairs = n * (n - 1) / 2
    return float(agreement.sum() / total_pairs)


def top_k_recall(y_true, y_pred, *, k: int, maximize: bool = True) -> float:
    """Fraction of the true top-k items found in the predicted top-k."""
    y_true, y_pred = _prepare(y_true, y_pred)
    if not 1 <= k <= y_true.size:
        raise ValueError(f"k must be in [1, {y_true.size}], got {k}")
    sign = -1.0 if maximize else 1.0
    true_top = set(np.argsort(sign * y_true, kind="mergesort")[:k].tolist())
    pred_top = set(np.argsort(sign * y_pred, kind="mergesort")[:k].tolist())
    return len(true_top & pred_top) / k


def regret_at_k(y_true, y_pred, *, k: int, maximize: bool = True) -> float:
    """Gap between the true optimum and the best true value in the predicted top-k.

    Zero means the screen-then-simulate loop would have found the true best
    configuration within a budget of *k* simulations; always non-negative.
    """
    y_true, y_pred = _prepare(y_true, y_pred)
    if not 1 <= k <= y_true.size:
        raise ValueError(f"k must be in [1, {y_true.size}], got {k}")
    sign = -1.0 if maximize else 1.0
    predicted_top = np.argsort(sign * y_pred, kind="mergesort")[:k]
    if maximize:
        return float(y_true.max() - y_true[predicted_top].max())
    return float(y_true[predicted_top].min() - y_true.min())
