"""Technology constants shared by the performance and power models.

The numbers below are representative of a 22 nm-class out-of-order core
(similar to the gem5 ``O3CPU`` + McPAT defaults the paper uses).  They are
constants of the *substrate*, not of the design space: every configuration in
Table I is evaluated against the same technology assumptions, so the learned
models see a consistent world.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TechnologyParameters:
    """Latency and energy constants of the modelled technology node."""

    # -- memory hierarchy latencies --------------------------------------
    #: L1 hit latency in core cycles (pipelined, load-to-use).
    l1_hit_cycles: float = 3.0
    #: L2 hit latency in core cycles at the reference frequency.
    l2_hit_cycles: float = 14.0
    #: DRAM access latency in nanoseconds (frequency independent).
    dram_latency_ns: float = 60.0
    #: Reference core frequency (GHz) at which cycle latencies are quoted.
    reference_frequency_ghz: float = 2.0

    # -- pipeline ----------------------------------------------------------
    #: Front-end depth in stages; sets the branch misprediction penalty floor.
    frontend_depth: float = 11.0
    #: Extra misprediction penalty per unit of pipeline width (wider machines
    #: refill more state on a flush).
    flush_refill_per_width: float = 0.55

    # -- power -------------------------------------------------------------
    #: Supply voltage at the reference frequency (V); scaled with frequency.
    nominal_vdd: float = 0.9
    #: Voltage/frequency scaling slope (V per GHz above the reference).
    vdd_slope_per_ghz: float = 0.05
    #: Leakage power density in W per mm^2 of modelled area.
    leakage_w_per_mm2: float = 0.08
    #: Dynamic energy scale factor tying switched capacitance to Watts.
    dynamic_energy_scale: float = 0.065

    def vdd_at(self, frequency_ghz):
        """Supply voltage needed to sustain *frequency_ghz* (simple DVFS line).

        Accepts a scalar or an ``(n,)`` frequency vector (the scalar and
        batch power paths share this one definition of the DVFS model).
        """
        delta = frequency_ghz - self.reference_frequency_ghz
        return np.maximum(0.6, self.nominal_vdd + self.vdd_slope_per_ghz * delta)

    def dram_latency_cycles(self, frequency_ghz: float) -> float:
        """DRAM latency expressed in core cycles at *frequency_ghz*."""
        return self.dram_latency_ns * frequency_ghz

    def l2_latency_cycles(self, frequency_ghz: float) -> float:
        """L2 latency in core cycles; partially frequency dependent.

        The L2 is on the core clock, but wire delay forces slightly more
        cycles at higher frequencies.
        """
        scale = frequency_ghz / self.reference_frequency_ghz
        return self.l2_hit_cycles * (0.7 + 0.3 * scale)


#: Default technology used by every experiment in the repository.
DEFAULT_TECHNOLOGY = TechnologyParameters()
