"""Out-of-order backend model.

The backend model bounds sustainable IPC by the classic limiters of an
out-of-order machine:

* **pipeline width** — fetch/decode/issue/commit width is a hard ceiling;
* **instruction window** — the usable instruction-level parallelism grows
  with the effective window (the minimum of ROB, issue-queue, register-file
  and load/store-queue headroom) following a saturating square-root law in
  units of the workload's dependency-chain length;
* **functional units** — each instruction class needs a matching unit, so a
  configuration with a single FP multiplier cannot sustain FP-heavy codes;
* **front-end supply** — the fetch buffer and fetch queue bound how many
  micro-ops per cycle the front end can deliver.

The memory-stall component uses the cache model's AMAT, discounted by the
amount of memory-level parallelism the window can actually expose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.cache import CacheHierarchyBatchResult, CacheHierarchyResult
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True)
class BackendModelResult:
    """Breakdown of the backend IPC limiters for one (config, workload) pair."""

    width_limit: float
    window_limit: float
    functional_unit_limit: float
    frontend_supply_limit: float
    core_ipc: float
    memory_stall_cpi: float
    effective_window: float
    exposed_mlp: float


@dataclass(frozen=True)
class BackendModelBatchResult:
    """Vectorized companion of :class:`BackendModelResult`.

    Every field holds an ``(n_configs,)`` array; row ``i`` corresponds to the
    ``i``-th configuration handed to :meth:`BackendModel.evaluate_batch`.
    """

    width_limit: np.ndarray
    window_limit: np.ndarray
    functional_unit_limit: np.ndarray
    frontend_supply_limit: np.ndarray
    core_ipc: np.ndarray
    memory_stall_cpi: np.ndarray
    effective_window: np.ndarray
    exposed_mlp: np.ndarray


class BackendModel:
    """Analytical model of the issue/execute/commit backend."""

    #: Window entries (per unit of dependency-chain length) needed to expose
    #: one additional unit of ILP; calibrated so a 192-entry ROB roughly
    #: saturates a chain length of 5.
    WINDOW_SCALE = 9.0
    #: Number of load/store pipes assumed per LSQ partition.
    MEMORY_ISSUE_PORTS = 2.0

    def evaluate(
        self,
        *,
        pipeline_width: int,
        rob_size: int,
        inst_queue_size: int,
        int_rf_size: int,
        fp_rf_size: int,
        load_queue_size: int,
        store_queue_size: int,
        int_alu_count: int,
        int_muldiv_count: int,
        fp_alu_count: int,
        fp_muldiv_count: int,
        fetch_buffer_bytes: int,
        fetch_queue_uops: int,
        cache: CacheHierarchyResult,
        workload: WorkloadProfile,
    ) -> BackendModelResult:
        """Evaluate sustainable IPC and memory stall CPI."""
        mix = workload.mix

        # ---- effective instruction window -------------------------------
        # Registers beyond the architectural set feed renaming; the in-flight
        # window cannot exceed what the RF can rename or the queues can hold.
        int_rename_headroom = max(int_rf_size - 32, 8) / max(1.0 - mix.fp_fraction, 0.05)
        fp_rename_headroom = (
            max(fp_rf_size - 32, 8) / max(mix.fp_fraction, 0.05)
            if mix.fp_fraction > 0.01
            else np.inf
        )
        load_window = load_queue_size / max(mix.load, 0.02)
        store_window = store_queue_size / max(mix.store, 0.02)
        # The issue queue holds only not-yet-issued ops, so it supports a
        # window a few times its size.
        iq_window = inst_queue_size * 3.0
        effective_window = float(
            min(rob_size, iq_window, int_rename_headroom, fp_rename_headroom,
                load_window, store_window)
        )

        # ---- ILP extracted from the window -------------------------------
        chain = workload.dependency_chain_length
        window_limit = workload.ideal_ipc * (
            1.0 - np.exp(-effective_window / (chain * self.WINDOW_SCALE))
        )

        # ---- functional-unit throughput ----------------------------------
        class_limits = []
        for fraction, units in (
            (mix.int_alu, int_alu_count),
            (mix.int_muldiv, int_muldiv_count * 0.5),  # long-latency, half throughput
            (mix.fp_alu, fp_alu_count),
            (mix.fp_muldiv, fp_muldiv_count * 0.5),
            (mix.load + mix.store, self.MEMORY_ISSUE_PORTS),
            (mix.branch, max(int_alu_count * 0.5, 1.0)),
        ):
            if fraction > 1e-3:
                class_limits.append(units / fraction)
        functional_unit_limit = float(min(class_limits)) if class_limits else float(pipeline_width)

        # ---- front-end supply --------------------------------------------
        # A fetch buffer of B bytes supplies ~B/4 instructions per access;
        # the fetch queue decouples fetch from decode and hides I-cache misses.
        fetch_per_cycle = fetch_buffer_bytes / 4.0
        icache_supply = fetch_per_cycle * (1.0 - cache.l1i_miss_rate * 0.6)
        queue_smoothing = 1.0 - np.exp(-fetch_queue_uops / (4.0 * max(pipeline_width, 1)))
        frontend_supply_limit = float(icache_supply * (0.6 + 0.4 * queue_smoothing))

        core_ipc = float(
            min(pipeline_width, window_limit, functional_unit_limit, frontend_supply_limit)
        )
        core_ipc = max(core_ipc, 0.05)

        # ---- memory stalls -------------------------------------------------
        # Long-latency misses overlap up to the exposed MLP; a big window
        # exposes more of the workload's inherent MLP.
        exposed_mlp = float(
            min(workload.memory.mlp, 1.0 + effective_window / 20.0)
        )
        miss_latency = cache.l2_hit_cycles + cache.l2_miss_rate * cache.dram_cycles
        memory_stall_cpi = (
            mix.memory_fraction
            * cache.l1d_miss_rate
            * miss_latency
            / max(exposed_mlp, 1.0)
        )
        # Compute-bound codes hide part of the remaining latency behind
        # independent work; memory-bound codes cannot.
        hide_fraction = 0.35 * (1.0 - workload.memory_boundedness)
        memory_stall_cpi = float(memory_stall_cpi * (1.0 - hide_fraction))

        return BackendModelResult(
            width_limit=float(pipeline_width),
            window_limit=float(window_limit),
            functional_unit_limit=functional_unit_limit,
            frontend_supply_limit=frontend_supply_limit,
            core_ipc=core_ipc,
            memory_stall_cpi=memory_stall_cpi,
            effective_window=effective_window,
            exposed_mlp=exposed_mlp,
        )

    def evaluate_batch(
        self,
        *,
        pipeline_width: np.ndarray,
        rob_size: np.ndarray,
        inst_queue_size: np.ndarray,
        int_rf_size: np.ndarray,
        fp_rf_size: np.ndarray,
        load_queue_size: np.ndarray,
        store_queue_size: np.ndarray,
        int_alu_count: np.ndarray,
        int_muldiv_count: np.ndarray,
        fp_alu_count: np.ndarray,
        fp_muldiv_count: np.ndarray,
        fetch_buffer_bytes: np.ndarray,
        fetch_queue_uops: np.ndarray,
        cache: CacheHierarchyBatchResult,
        workload: WorkloadProfile,
    ) -> BackendModelBatchResult:
        """Evaluate sustainable IPC for ``(n_configs,)`` parameter vectors.

        Mirrors :meth:`evaluate` arithmetic exactly (same operations in the
        same order) so batch and scalar results agree to floating-point
        round-off.
        """
        mix = workload.mix

        # ---- effective instruction window -------------------------------
        int_rename_headroom = np.maximum(int_rf_size - 32, 8) / max(1.0 - mix.fp_fraction, 0.05)
        load_window = load_queue_size / max(mix.load, 0.02)
        store_window = store_queue_size / max(mix.store, 0.02)
        iq_window = inst_queue_size * 3.0
        effective_window = np.minimum(rob_size, iq_window)
        effective_window = np.minimum(effective_window, int_rename_headroom)
        if mix.fp_fraction > 0.01:
            fp_rename_headroom = np.maximum(fp_rf_size - 32, 8) / max(mix.fp_fraction, 0.05)
            effective_window = np.minimum(effective_window, fp_rename_headroom)
        effective_window = np.minimum(effective_window, load_window)
        effective_window = np.minimum(effective_window, store_window)

        # ---- ILP extracted from the window -------------------------------
        chain = workload.dependency_chain_length
        window_limit = workload.ideal_ipc * (
            1.0 - np.exp(-effective_window / (chain * self.WINDOW_SCALE))
        )

        # ---- functional-unit throughput ----------------------------------
        functional_unit_limit = None
        for fraction, units in (
            (mix.int_alu, int_alu_count),
            (mix.int_muldiv, int_muldiv_count * 0.5),  # long-latency, half throughput
            (mix.fp_alu, fp_alu_count),
            (mix.fp_muldiv, fp_muldiv_count * 0.5),
            (mix.load + mix.store, np.broadcast_to(self.MEMORY_ISSUE_PORTS, pipeline_width.shape)),
            (mix.branch, np.maximum(int_alu_count * 0.5, 1.0)),
        ):
            if fraction > 1e-3:
                limit = units / fraction
                functional_unit_limit = (
                    limit if functional_unit_limit is None
                    else np.minimum(functional_unit_limit, limit)
                )
        if functional_unit_limit is None:
            functional_unit_limit = pipeline_width.astype(np.float64)

        # ---- front-end supply --------------------------------------------
        fetch_per_cycle = fetch_buffer_bytes / 4.0
        icache_supply = fetch_per_cycle * (1.0 - cache.l1i_miss_rate * 0.6)
        queue_smoothing = 1.0 - np.exp(-fetch_queue_uops / (4.0 * np.maximum(pipeline_width, 1)))
        frontend_supply_limit = icache_supply * (0.6 + 0.4 * queue_smoothing)

        core_ipc = np.minimum(pipeline_width, window_limit)
        core_ipc = np.minimum(core_ipc, functional_unit_limit)
        core_ipc = np.minimum(core_ipc, frontend_supply_limit)
        core_ipc = np.maximum(core_ipc, 0.05)

        # ---- memory stalls -------------------------------------------------
        exposed_mlp = np.minimum(workload.memory.mlp, 1.0 + effective_window / 20.0)
        miss_latency = cache.l2_hit_cycles + cache.l2_miss_rate * cache.dram_cycles
        memory_stall_cpi = (
            mix.memory_fraction
            * cache.l1d_miss_rate
            * miss_latency
            / np.maximum(exposed_mlp, 1.0)
        )
        hide_fraction = 0.35 * (1.0 - workload.memory_boundedness)
        memory_stall_cpi = memory_stall_cpi * (1.0 - hide_fraction)

        return BackendModelBatchResult(
            width_limit=pipeline_width.astype(np.float64),
            window_limit=window_limit,
            functional_unit_limit=functional_unit_limit,
            frontend_supply_limit=frontend_supply_limit,
            core_ipc=core_ipc,
            memory_stall_cpi=memory_stall_cpi,
            effective_window=effective_window,
            exposed_mlp=exposed_mlp,
        )
