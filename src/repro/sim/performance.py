"""Top-level performance model: combines frontend, cache and backend models.

The model follows the interval-analysis view of an out-of-order core: the
steady-state CPI is the sum of

* the base CPI the backend can sustain (``1 / core_ipc``),
* the branch-misprediction CPI (front-end flushes),
* the memory-stall CPI (long-latency misses not hidden by the window).

IPC is the reciprocal.  All parameter interactions the WAM algorithm is
supposed to discover (width x ROB, caches x memory-boundedness, predictor x
branchiness, frequency x memory latency) are genuinely present in this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.designspace.space import DesignSpace
from repro.sim.backend import BackendModel, BackendModelResult
from repro.sim.branch import BranchModelResult, BranchPredictorModel
from repro.sim.cache import CacheHierarchyModel, CacheHierarchyResult
from repro.sim.technology import DEFAULT_TECHNOLOGY, TechnologyParameters
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True)
class PerformanceResult:
    """Performance metrics and their breakdown for one (config, workload) pair."""

    ipc: float
    cpi: float
    frequency_ghz: float
    #: Billions of instructions per second — IPC times frequency.
    bips: float
    branch: BranchModelResult
    cache: CacheHierarchyResult
    backend: BackendModelResult

    @property
    def base_cpi(self) -> float:
        """CPI attributable to the core's issue limitations alone."""
        return 1.0 / self.backend.core_ipc


class PerformanceModel:
    """Analytical IPC model over the Table I design space."""

    def __init__(self, technology: TechnologyParameters = DEFAULT_TECHNOLOGY) -> None:
        self.technology = technology
        self.branch_model = BranchPredictorModel(technology)
        self.cache_model = CacheHierarchyModel(technology)
        self.backend_model = BackendModel()

    def evaluate(
        self, config: Mapping, workload: WorkloadProfile, space: DesignSpace
    ) -> PerformanceResult:
        """Evaluate IPC for a configuration of *space* running *workload*."""
        cfg = space.validate(config)
        frequency = float(cfg["core_frequency_ghz"])

        cache = self.cache_model.evaluate(
            l1_size_kb=int(cfg["l1i_size_kb"]),
            l1_assoc=int(cfg["l1_assoc"]),
            l2_size_kb=int(cfg["l2_size_kb"]),
            l2_assoc=int(cfg["l2_assoc"]),
            cacheline_bytes=int(cfg["cacheline_bytes"]),
            frequency_ghz=frequency,
            workload=workload,
        )
        branch = self.branch_model.evaluate(
            predictor=str(cfg["branch_predictor"]),
            ras_size=int(cfg["ras_size"]),
            btb_size=int(cfg["btb_size"]),
            pipeline_width=int(cfg["pipeline_width"]),
            workload=workload,
        )
        backend = self.backend_model.evaluate(
            pipeline_width=int(cfg["pipeline_width"]),
            rob_size=int(cfg["rob_size"]),
            inst_queue_size=int(cfg["inst_queue_size"]),
            int_rf_size=int(cfg["int_rf_size"]),
            fp_rf_size=int(cfg["fp_rf_size"]),
            load_queue_size=int(cfg["load_queue_size"]),
            store_queue_size=int(cfg["store_queue_size"]),
            int_alu_count=int(cfg["int_alu_count"]),
            int_muldiv_count=int(cfg["int_muldiv_count"]),
            fp_alu_count=int(cfg["fp_alu_count"]),
            fp_muldiv_count=int(cfg["fp_muldiv_count"]),
            fetch_buffer_bytes=int(cfg["fetch_buffer_bytes"]),
            fetch_queue_uops=int(cfg["fetch_queue_uops"]),
            cache=cache,
            workload=workload,
        )

        cpi = (1.0 / backend.core_ipc) + branch.cpi_contribution + backend.memory_stall_cpi
        ipc = 1.0 / cpi
        return PerformanceResult(
            ipc=float(ipc),
            cpi=float(cpi),
            frequency_ghz=frequency,
            bips=float(ipc * frequency),
            branch=branch,
            cache=cache,
            backend=backend,
        )
