"""Top-level performance model: combines frontend, cache and backend models.

The model follows the interval-analysis view of an out-of-order core: the
steady-state CPI is the sum of

* the base CPI the backend can sustain (``1 / core_ipc``),
* the branch-misprediction CPI (front-end flushes),
* the memory-stall CPI (long-latency misses not hidden by the window).

IPC is the reciprocal.  All parameter interactions the WAM algorithm is
supposed to discover (width x ROB, caches x memory-boundedness, predictor x
branchiness, frequency x memory latency) are genuinely present in this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.designspace.space import DesignSpace
from repro.sim.backend import BackendModel, BackendModelBatchResult, BackendModelResult
from repro.sim.branch import BranchModelBatchResult, BranchModelResult, BranchPredictorModel
from repro.sim.cache import CacheHierarchyBatchResult, CacheHierarchyModel, CacheHierarchyResult
from repro.sim.technology import DEFAULT_TECHNOLOGY, TechnologyParameters
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True)
class PerformanceResult:
    """Performance metrics and their breakdown for one (config, workload) pair."""

    ipc: float
    cpi: float
    frequency_ghz: float
    #: Billions of instructions per second — IPC times frequency.
    bips: float
    branch: BranchModelResult
    cache: CacheHierarchyResult
    backend: BackendModelResult

    @property
    def base_cpi(self) -> float:
        """CPI attributable to the core's issue limitations alone."""
        return 1.0 / self.backend.core_ipc


@dataclass(frozen=True)
class PerformanceBatchResult:
    """Vectorized companion of :class:`PerformanceResult`.

    Scalar metric fields become ``(n_configs,)`` arrays and the per-model
    breakdowns become the corresponding ``*BatchResult`` containers.
    """

    ipc: np.ndarray
    cpi: np.ndarray
    frequency_ghz: np.ndarray
    bips: np.ndarray
    branch: BranchModelBatchResult
    cache: CacheHierarchyBatchResult
    backend: BackendModelBatchResult

    @property
    def base_cpi(self) -> np.ndarray:
        """Per-config CPI attributable to the core's issue limitations alone."""
        return 1.0 / self.backend.core_ipc


class PerformanceModel:
    """Analytical IPC model over the Table I design space."""

    def __init__(self, technology: TechnologyParameters = DEFAULT_TECHNOLOGY) -> None:
        self.technology = technology
        self.branch_model = BranchPredictorModel(technology)
        self.cache_model = CacheHierarchyModel(technology)
        self.backend_model = BackendModel()

    def evaluate(
        self, config: Mapping, workload: WorkloadProfile, space: DesignSpace
    ) -> PerformanceResult:
        """Evaluate IPC for a configuration of *space* running *workload*."""
        cfg = space.validate(config)
        frequency = float(cfg["core_frequency_ghz"])

        cache = self.cache_model.evaluate(
            l1_size_kb=int(cfg["l1i_size_kb"]),
            l1_assoc=int(cfg["l1_assoc"]),
            l2_size_kb=int(cfg["l2_size_kb"]),
            l2_assoc=int(cfg["l2_assoc"]),
            cacheline_bytes=int(cfg["cacheline_bytes"]),
            frequency_ghz=frequency,
            workload=workload,
        )
        branch = self.branch_model.evaluate(
            predictor=str(cfg["branch_predictor"]),
            ras_size=int(cfg["ras_size"]),
            btb_size=int(cfg["btb_size"]),
            pipeline_width=int(cfg["pipeline_width"]),
            workload=workload,
        )
        backend = self.backend_model.evaluate(
            pipeline_width=int(cfg["pipeline_width"]),
            rob_size=int(cfg["rob_size"]),
            inst_queue_size=int(cfg["inst_queue_size"]),
            int_rf_size=int(cfg["int_rf_size"]),
            fp_rf_size=int(cfg["fp_rf_size"]),
            load_queue_size=int(cfg["load_queue_size"]),
            store_queue_size=int(cfg["store_queue_size"]),
            int_alu_count=int(cfg["int_alu_count"]),
            int_muldiv_count=int(cfg["int_muldiv_count"]),
            fp_alu_count=int(cfg["fp_alu_count"]),
            fp_muldiv_count=int(cfg["fp_muldiv_count"]),
            fetch_buffer_bytes=int(cfg["fetch_buffer_bytes"]),
            fetch_queue_uops=int(cfg["fetch_queue_uops"]),
            cache=cache,
            workload=workload,
        )

        cpi = (1.0 / backend.core_ipc) + branch.cpi_contribution + backend.memory_stall_cpi
        ipc = 1.0 / cpi
        return PerformanceResult(
            ipc=float(ipc),
            cpi=float(cpi),
            frequency_ghz=frequency,
            bips=float(ipc * frequency),
            branch=branch,
            cache=cache,
            backend=backend,
        )

    def evaluate_batch(
        self, params: Mapping[str, np.ndarray], workload: WorkloadProfile
    ) -> PerformanceBatchResult:
        """Evaluate IPC for many configurations of *workload* at once.

        Parameters
        ----------
        params:
            Mapping from Table I parameter name to an ``(n_configs,)``
            ``float64`` vector, plus the derived boolean vector
            ``"is_tournament"`` for the categorical predictor choice (see
            :meth:`repro.sim.simulator.Simulator.encode_batch`).  Values must
            already be validated members of the design space — unlike
            :meth:`evaluate`, no per-config validation happens here.
        workload:
            A single workload (or SimPoint phase) profile shared by every
            configuration in the batch.
        """
        frequency = params["core_frequency_ghz"]

        cache = self.cache_model.evaluate_batch(
            l1_size_kb=params["l1i_size_kb"],
            l1_assoc=params["l1_assoc"],
            l2_size_kb=params["l2_size_kb"],
            l2_assoc=params["l2_assoc"],
            cacheline_bytes=params["cacheline_bytes"],
            frequency_ghz=frequency,
            workload=workload,
        )
        branch = self.branch_model.evaluate_batch(
            is_tournament=params["is_tournament"],
            ras_size=params["ras_size"],
            btb_size=params["btb_size"],
            pipeline_width=params["pipeline_width"],
            workload=workload,
        )
        backend = self.backend_model.evaluate_batch(
            pipeline_width=params["pipeline_width"],
            rob_size=params["rob_size"],
            inst_queue_size=params["inst_queue_size"],
            int_rf_size=params["int_rf_size"],
            fp_rf_size=params["fp_rf_size"],
            load_queue_size=params["load_queue_size"],
            store_queue_size=params["store_queue_size"],
            int_alu_count=params["int_alu_count"],
            int_muldiv_count=params["int_muldiv_count"],
            fp_alu_count=params["fp_alu_count"],
            fp_muldiv_count=params["fp_muldiv_count"],
            fetch_buffer_bytes=params["fetch_buffer_bytes"],
            fetch_queue_uops=params["fetch_queue_uops"],
            cache=cache,
            workload=workload,
        )

        cpi = (1.0 / backend.core_ipc) + branch.cpi_contribution + backend.memory_stall_cpi
        ipc = 1.0 / cpi
        return PerformanceBatchResult(
            ipc=ipc,
            cpi=cpi,
            frequency_ghz=frequency,
            bips=ipc * frequency,
            branch=branch,
            cache=cache,
            backend=backend,
        )
