"""Analytical CPU simulation substrate (gem5 + McPAT substitute)."""

from repro.sim.backend import BackendModel, BackendModelResult
from repro.sim.branch import BranchModelResult, BranchPredictorModel
from repro.sim.cache import CacheHierarchyModel, CacheHierarchyResult
from repro.sim.performance import PerformanceModel, PerformanceResult
from repro.sim.power import AreaBreakdown, PowerModel, PowerResult
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.technology import DEFAULT_TECHNOLOGY, TechnologyParameters

__all__ = [
    "BranchPredictorModel",
    "BranchModelResult",
    "CacheHierarchyModel",
    "CacheHierarchyResult",
    "BackendModel",
    "BackendModelResult",
    "PerformanceModel",
    "PerformanceResult",
    "PowerModel",
    "PowerResult",
    "AreaBreakdown",
    "Simulator",
    "SimulationResult",
    "TechnologyParameters",
    "DEFAULT_TECHNOLOGY",
]
