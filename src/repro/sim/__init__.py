"""Analytical CPU simulation substrate (gem5 + McPAT substitute).

Every model exposes a scalar ``evaluate`` (one configuration per call) and a
vectorized ``evaluate_batch`` (``(n_configs,)`` parameter vectors per call);
the :class:`Simulator` facade front-ends both through ``run`` / ``run_batch``.
"""

from repro.sim.backend import BackendModel, BackendModelBatchResult, BackendModelResult
from repro.sim.branch import BranchModelBatchResult, BranchModelResult, BranchPredictorModel
from repro.sim.cache import (
    CacheHierarchyBatchResult,
    CacheHierarchyModel,
    CacheHierarchyResult,
)
from repro.sim.performance import (
    PerformanceBatchResult,
    PerformanceModel,
    PerformanceResult,
)
from repro.sim.power import (
    AreaBatchBreakdown,
    AreaBreakdown,
    PowerBatchResult,
    PowerModel,
    PowerResult,
)
from repro.sim.simulator import BatchSimulationResult, SimulationResult, Simulator
from repro.sim.technology import DEFAULT_TECHNOLOGY, TechnologyParameters

__all__ = [
    "BranchPredictorModel",
    "BranchModelResult",
    "BranchModelBatchResult",
    "CacheHierarchyModel",
    "CacheHierarchyResult",
    "CacheHierarchyBatchResult",
    "BackendModel",
    "BackendModelResult",
    "BackendModelBatchResult",
    "PerformanceModel",
    "PerformanceResult",
    "PerformanceBatchResult",
    "PowerModel",
    "PowerResult",
    "PowerBatchResult",
    "AreaBreakdown",
    "AreaBatchBreakdown",
    "Simulator",
    "SimulationResult",
    "BatchSimulationResult",
    "TechnologyParameters",
    "DEFAULT_TECHNOLOGY",
]
