"""Cache-hierarchy model.

The two-level hierarchy of Table I (split L1, unified L2, 8 GB DRAM) is
modelled analytically:

* capacity misses follow a power-law in ``working_set / capacity`` — the
  classic "square-root rule" observed for SPEC workloads,
* conflict misses shrink with associativity and grow with the workload's
  access irregularity,
* larger cache lines help workloads with high spatial locality and hurt the
  irregular ones (more fetch bandwidth wasted per miss),
* the model reports an average memory access time (AMAT) and the per-level
  miss rates needed by the backend stall model and the power model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.technology import DEFAULT_TECHNOLOGY, TechnologyParameters
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True)
class CacheHierarchyResult:
    """Miss rates and latencies of the modelled two-level hierarchy."""

    l1d_miss_rate: float
    l1i_miss_rate: float
    l2_miss_rate: float
    l1_hit_cycles: float
    l2_hit_cycles: float
    dram_cycles: float
    amat_cycles: float
    #: Misses per kilo-instruction reaching DRAM (used by the power model).
    dram_mpki: float


@dataclass(frozen=True)
class CacheHierarchyBatchResult:
    """Vectorized companion of :class:`CacheHierarchyResult`.

    Every field holds an ``(n_configs,)`` array; row ``i`` corresponds to the
    ``i``-th configuration handed to
    :meth:`CacheHierarchyModel.evaluate_batch`.
    """

    l1d_miss_rate: np.ndarray
    l1i_miss_rate: np.ndarray
    l2_miss_rate: np.ndarray
    l1_hit_cycles: np.ndarray
    l2_hit_cycles: np.ndarray
    dram_cycles: np.ndarray
    amat_cycles: np.ndarray
    dram_mpki: np.ndarray


class CacheHierarchyModel:
    """Analytical two-level cache hierarchy."""

    #: Exponent of the capacity-miss power law (tempered square-root rule).
    CAPACITY_EXPONENT = 0.35
    #: Base L1 miss rate for a workload whose working set just fits.
    L1_BASE_MISS = 0.02
    #: Base L2 (local) miss rate for a workload whose working set just fits.
    L2_BASE_MISS = 0.05
    #: Instruction-side working sets are far smaller than data-side ones.
    ICACHE_FOOTPRINT_FRACTION = 0.15
    #: Fraction of would-be capacity misses that still hit thanks to temporal
    #: reuse not captured by the pure working-set model (hit-under-miss,
    #: stack locality).  Irregular access streams get less of this benefit.
    REUSE_SHIELD = 0.55

    def __init__(self, technology: TechnologyParameters = DEFAULT_TECHNOLOGY) -> None:
        self.technology = technology

    # -- individual caches -------------------------------------------------
    def capacity_miss_rate(
        self, working_set_kb: float, capacity_kb: float, base_rate: float
    ) -> float:
        """Power-law capacity miss rate, saturating at 100 %."""
        if capacity_kb <= 0:
            raise ValueError(f"capacity_kb must be positive, got {capacity_kb}")
        ratio = working_set_kb / capacity_kb
        if ratio <= 1.0:
            # Working set fits: only compulsory/streaming misses remain.
            return base_rate * ratio
        return float(min(1.0, base_rate + (1.0 - base_rate) * (1.0 - ratio ** -self.CAPACITY_EXPONENT)))

    def conflict_factor(self, associativity: int, irregularity: float) -> float:
        """Multiplier (> 1) describing conflict misses for low associativity."""
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {associativity}")
        # Direct-mapped-like behaviour hurts irregular access streams most.
        return 1.0 + irregularity * 0.8 / float(associativity)

    def line_size_factor(self, cacheline_bytes: int, spatial_locality: float) -> float:
        """Multiplier describing the effect of line size on the miss rate.

        A 64-byte line halves the miss rate of a perfectly streaming workload
        relative to a 32-byte line, and slightly inflates it for an irregular
        one (useless prefetch of the second half of the line displaces data).
        """
        if cacheline_bytes not in (32, 64):
            raise ValueError(f"unsupported cache line size {cacheline_bytes}")
        if cacheline_bytes == 32:
            return 1.0
        return float(1.0 - 0.45 * spatial_locality + 0.10 * (1.0 - spatial_locality))

    # -- hierarchy ----------------------------------------------------------
    def evaluate(
        self,
        *,
        l1_size_kb: int,
        l1_assoc: int,
        l2_size_kb: int,
        l2_assoc: int,
        cacheline_bytes: int,
        frequency_ghz: float,
        workload: WorkloadProfile,
    ) -> CacheHierarchyResult:
        """Evaluate the hierarchy for one configuration and workload."""
        memory = workload.memory
        line_factor = self.line_size_factor(cacheline_bytes, memory.spatial_locality)

        reuse_factor = 1.0 - self.REUSE_SHIELD * (1.0 - memory.access_irregularity * 0.5)
        l1d_miss = (
            self.capacity_miss_rate(memory.l1_working_set_kb, l1_size_kb, self.L1_BASE_MISS)
            * self.conflict_factor(l1_assoc, memory.access_irregularity)
            * line_factor
            * reuse_factor
        )
        l1d_miss = float(np.clip(l1d_miss, 0.0, 1.0))

        l1i_miss = (
            self.capacity_miss_rate(
                memory.l1_working_set_kb * self.ICACHE_FOOTPRINT_FRACTION,
                l1_size_kb,
                self.L1_BASE_MISS * 0.5,
            )
            * self.conflict_factor(l1_assoc, memory.access_irregularity * 0.5)
        )
        l1i_miss = float(np.clip(l1i_miss, 0.0, 1.0))

        # The L2 sees only the L1's misses; its local miss rate is computed
        # against the part of the working set that did not fit in L1.
        l2_miss = (
            self.capacity_miss_rate(memory.l2_working_set_kb, l2_size_kb, self.L2_BASE_MISS)
            * self.conflict_factor(l2_assoc, memory.access_irregularity)
            * (0.85 + 0.15 * line_factor)
            * reuse_factor
        )
        l2_miss = float(np.clip(l2_miss, 0.0, 1.0))

        l1_hit = self.technology.l1_hit_cycles
        l2_hit = self.technology.l2_latency_cycles(frequency_ghz)
        dram = self.technology.dram_latency_cycles(frequency_ghz)

        amat = l1_hit + l1d_miss * (l2_hit + l2_miss * dram)
        accesses_per_kiloinst = workload.mix.memory_fraction * 1000.0
        dram_mpki = accesses_per_kiloinst * l1d_miss * l2_miss
        return CacheHierarchyResult(
            l1d_miss_rate=l1d_miss,
            l1i_miss_rate=l1i_miss,
            l2_miss_rate=l2_miss,
            l1_hit_cycles=float(l1_hit),
            l2_hit_cycles=float(l2_hit),
            dram_cycles=float(dram),
            amat_cycles=float(amat),
            dram_mpki=float(dram_mpki),
        )

    # -- vectorized hierarchy ----------------------------------------------
    def _capacity_miss_rate_batch(
        self, working_set_kb: float, capacity_kb: np.ndarray, base_rate: float
    ) -> np.ndarray:
        """Vectorized :meth:`capacity_miss_rate` over per-config capacities."""
        ratio = working_set_kb / capacity_kb
        overflow = np.minimum(
            1.0, base_rate + (1.0 - base_rate) * (1.0 - ratio ** -self.CAPACITY_EXPONENT)
        )
        return np.where(ratio <= 1.0, base_rate * ratio, overflow)

    def evaluate_batch(
        self,
        *,
        l1_size_kb: np.ndarray,
        l1_assoc: np.ndarray,
        l2_size_kb: np.ndarray,
        l2_assoc: np.ndarray,
        cacheline_bytes: np.ndarray,
        frequency_ghz: np.ndarray,
        workload: WorkloadProfile,
    ) -> CacheHierarchyBatchResult:
        """Evaluate the hierarchy for ``(n_configs,)`` parameter vectors.

        Mirrors :meth:`evaluate` arithmetic exactly (same operations in the
        same order) so batch and scalar results agree to floating-point
        round-off; inputs are assumed pre-validated by the design space.
        """
        memory = workload.memory
        spatial = memory.spatial_locality
        line_factor = np.where(
            cacheline_bytes == 32, 1.0, 1.0 - 0.45 * spatial + 0.10 * (1.0 - spatial)
        )

        reuse_factor = 1.0 - self.REUSE_SHIELD * (1.0 - memory.access_irregularity * 0.5)
        l1d_miss = (
            self._capacity_miss_rate_batch(
                memory.l1_working_set_kb, l1_size_kb, self.L1_BASE_MISS
            )
            * (1.0 + memory.access_irregularity * 0.8 / l1_assoc)
            * line_factor
            * reuse_factor
        )
        l1d_miss = np.clip(l1d_miss, 0.0, 1.0)

        l1i_miss = (
            self._capacity_miss_rate_batch(
                memory.l1_working_set_kb * self.ICACHE_FOOTPRINT_FRACTION,
                l1_size_kb,
                self.L1_BASE_MISS * 0.5,
            )
            * (1.0 + memory.access_irregularity * 0.5 * 0.8 / l1_assoc)
        )
        l1i_miss = np.clip(l1i_miss, 0.0, 1.0)

        l2_miss = (
            self._capacity_miss_rate_batch(
                memory.l2_working_set_kb, l2_size_kb, self.L2_BASE_MISS
            )
            * (1.0 + memory.access_irregularity * 0.8 / l2_assoc)
            * (0.85 + 0.15 * line_factor)
            * reuse_factor
        )
        l2_miss = np.clip(l2_miss, 0.0, 1.0)

        l1_hit = np.broadcast_to(
            np.float64(self.technology.l1_hit_cycles), frequency_ghz.shape
        )
        l2_hit = self.technology.l2_latency_cycles(frequency_ghz)
        dram = self.technology.dram_latency_cycles(frequency_ghz)

        amat = l1_hit + l1d_miss * (l2_hit + l2_miss * dram)
        accesses_per_kiloinst = workload.mix.memory_fraction * 1000.0
        dram_mpki = accesses_per_kiloinst * l1d_miss * l2_miss
        return CacheHierarchyBatchResult(
            l1d_miss_rate=l1d_miss,
            l1i_miss_rate=l1i_miss,
            l2_miss_rate=l2_miss,
            l1_hit_cycles=np.asarray(l1_hit, dtype=np.float64),
            l2_hit_cycles=l2_hit,
            dram_cycles=dram,
            amat_cycles=amat,
            dram_mpki=dram_mpki,
        )
