"""Branch-prediction model.

Computes the effective misprediction rate of a configuration running a
workload, combining:

* the base misprediction rate of the chosen predictor type for that workload
  (``BiModeBP`` vs ``TournamentBP``),
* return-address-stack overflows when the workload's call depth exceeds the
  configured RAS size,
* branch-target-buffer misses when the workload's branch-target footprint
  exceeds the configured BTB capacity,

and converts the result into a front-end stall CPI contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.technology import DEFAULT_TECHNOLOGY, TechnologyParameters
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True)
class BranchModelResult:
    """Breakdown of the branch model for one (config, workload) pair."""

    predictor_mispredict_rate: float
    ras_overflow_rate: float
    btb_miss_rate: float
    effective_mispredict_rate: float
    mispredict_penalty_cycles: float
    cpi_contribution: float


@dataclass(frozen=True)
class BranchModelBatchResult:
    """Vectorized companion of :class:`BranchModelResult`.

    Every field holds an ``(n_configs,)`` array; row ``i`` corresponds to the
    ``i``-th configuration handed to
    :meth:`BranchPredictorModel.evaluate_batch`.
    """

    predictor_mispredict_rate: np.ndarray
    ras_overflow_rate: np.ndarray
    btb_miss_rate: np.ndarray
    effective_mispredict_rate: np.ndarray
    mispredict_penalty_cycles: np.ndarray
    cpi_contribution: np.ndarray


class BranchPredictorModel:
    """Analytical model of the front-end branch behaviour."""

    #: Fraction of branches that are calls/returns (stresses the RAS).
    CALL_RETURN_FRACTION = 0.12
    #: A BTB miss is cheaper than a full mispredict; this scales its penalty.
    BTB_MISS_PENALTY_FRACTION = 0.4

    def __init__(self, technology: TechnologyParameters = DEFAULT_TECHNOLOGY) -> None:
        self.technology = technology

    def evaluate(
        self,
        *,
        predictor: str,
        ras_size: int,
        btb_size: int,
        pipeline_width: int,
        workload: WorkloadProfile,
    ) -> BranchModelResult:
        """Evaluate branch behaviour of one configuration on one workload."""
        base_rate = workload.branch.mispredict_rate(predictor)

        # Return-address stack: once the call depth exceeds the stack size the
        # overflowing fraction of returns mispredicts.  A logistic keeps the
        # transition smooth (real programs have a distribution of depths).
        depth_ratio = workload.branch.call_depth / max(ras_size, 1)
        ras_overflow = self.CALL_RETURN_FRACTION / (1.0 + np.exp(-4.0 * (depth_ratio - 1.0)))

        # Branch-target buffer: capacity misses follow a saturating curve in
        # footprint / capacity; irregular codes with huge target sets keep
        # missing even in a 4K-entry BTB.
        footprint_ratio = workload.branch.branch_target_footprint / max(btb_size, 1)
        btb_miss = 1.0 - np.exp(-0.45 * footprint_ratio)

        # A taken-branch redirect through the BTB-miss path costs a fraction
        # of a full flush; RAS overflows cost a full flush.
        effective_rate = float(
            base_rate
            + ras_overflow
            + btb_miss * self.BTB_MISS_PENALTY_FRACTION * base_rate
        )
        effective_rate = float(np.clip(effective_rate, 0.0, 0.6))

        penalty = float(
            self.technology.frontend_depth
            + self.technology.flush_refill_per_width * pipeline_width
        )
        cpi = workload.mix.branch * effective_rate * penalty
        return BranchModelResult(
            predictor_mispredict_rate=float(base_rate),
            ras_overflow_rate=float(ras_overflow),
            btb_miss_rate=float(btb_miss),
            effective_mispredict_rate=effective_rate,
            mispredict_penalty_cycles=penalty,
            cpi_contribution=float(cpi),
        )

    def evaluate_batch(
        self,
        *,
        is_tournament: np.ndarray,
        ras_size: np.ndarray,
        btb_size: np.ndarray,
        pipeline_width: np.ndarray,
        workload: WorkloadProfile,
    ) -> BranchModelBatchResult:
        """Evaluate branch behaviour for ``(n_configs,)`` parameter vectors.

        ``is_tournament`` is a boolean vector selecting between the two
        Table I predictor types per configuration.  Mirrors :meth:`evaluate`
        arithmetic exactly so batch and scalar results agree to
        floating-point round-off.
        """
        base_rate = np.where(
            is_tournament,
            workload.branch.tournament_mispredict_rate,
            workload.branch.bimode_mispredict_rate,
        )

        depth_ratio = workload.branch.call_depth / np.maximum(ras_size, 1)
        ras_overflow = self.CALL_RETURN_FRACTION / (1.0 + np.exp(-4.0 * (depth_ratio - 1.0)))

        footprint_ratio = workload.branch.branch_target_footprint / np.maximum(btb_size, 1)
        btb_miss = 1.0 - np.exp(-0.45 * footprint_ratio)

        effective_rate = (
            base_rate
            + ras_overflow
            + btb_miss * self.BTB_MISS_PENALTY_FRACTION * base_rate
        )
        effective_rate = np.clip(effective_rate, 0.0, 0.6)

        penalty = (
            self.technology.frontend_depth
            + self.technology.flush_refill_per_width * pipeline_width
        )
        cpi = workload.mix.branch * effective_rate * penalty
        return BranchModelBatchResult(
            predictor_mispredict_rate=base_rate,
            ras_overflow_rate=ras_overflow,
            btb_miss_rate=btb_miss,
            effective_mispredict_rate=effective_rate,
            mispredict_penalty_cycles=penalty,
            cpi_contribution=cpi,
        )
