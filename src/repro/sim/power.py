"""McPAT-style power and area model.

Power is decomposed, as in McPAT, into

* **dynamic power** — per-structure switched capacitance (scaled by the
  structure's size and port count), times activity (how often the structure
  is actually used, derived from the achieved IPC and instruction mix),
  times ``V^2 * f``;
* **static (leakage) power** — proportional to modelled area and supply
  voltage.

Area is a simple additive model in the sizes of the major structures; it is
also exposed separately because classic DSE studies trade PPA, and the
:mod:`repro.dse` extension uses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.designspace.space import DesignSpace
from repro.sim.performance import PerformanceBatchResult, PerformanceResult
from repro.sim.technology import DEFAULT_TECHNOLOGY, TechnologyParameters
from repro.workloads.characteristics import WorkloadProfile


@dataclass(frozen=True)
class AreaBreakdown:
    """Area (mm^2) of the major core structures."""

    core_logic: float
    register_files: float
    queues: float
    caches: float
    branch_unit: float
    functional_units: float

    @property
    def total(self) -> float:
        """Total modelled area in mm^2."""
        return (
            self.core_logic
            + self.register_files
            + self.queues
            + self.caches
            + self.branch_unit
            + self.functional_units
        )


@dataclass(frozen=True)
class AreaBatchBreakdown:
    """Vectorized companion of :class:`AreaBreakdown` (``(n_configs,)`` arrays)."""

    core_logic: np.ndarray
    register_files: np.ndarray
    queues: np.ndarray
    caches: np.ndarray
    branch_unit: np.ndarray
    functional_units: np.ndarray

    @property
    def total(self) -> np.ndarray:
        """Per-config total modelled area in mm^2."""
        return (
            self.core_logic
            + self.register_files
            + self.queues
            + self.caches
            + self.branch_unit
            + self.functional_units
        )


@dataclass(frozen=True)
class PowerResult:
    """Dynamic/static power breakdown for one (config, workload) pair."""

    dynamic_power_w: float
    static_power_w: float
    area: AreaBreakdown

    @property
    def total_power_w(self) -> float:
        """Total power in Watts."""
        return self.dynamic_power_w + self.static_power_w

    @property
    def area_mm2(self) -> float:
        """Total area in mm^2 (convenience alias)."""
        return self.area.total


@dataclass(frozen=True)
class PowerBatchResult:
    """Vectorized companion of :class:`PowerResult` (``(n_configs,)`` arrays)."""

    dynamic_power_w: np.ndarray
    static_power_w: np.ndarray
    area: AreaBatchBreakdown

    @property
    def total_power_w(self) -> np.ndarray:
        """Per-config total power in Watts."""
        return self.dynamic_power_w + self.static_power_w

    @property
    def area_mm2(self) -> np.ndarray:
        """Per-config total area in mm^2 (convenience alias)."""
        return self.area.total


class PowerModel:
    """Analytical area/power model in the spirit of McPAT."""

    def __init__(self, technology: TechnologyParameters = DEFAULT_TECHNOLOGY) -> None:
        self.technology = technology

    # -- area ---------------------------------------------------------------
    def area(self, config: Mapping, space: DesignSpace) -> AreaBreakdown:
        """Estimate the area of a configuration."""
        cfg = space.validate(config)
        width = float(cfg["pipeline_width"])

        # Superlinear growth with width captures the wakeup/select and bypass
        # networks that dominate wide machines.
        core_logic = 0.7 + 0.18 * width ** 1.6
        register_files = 0.004 * (float(cfg["int_rf_size"]) + float(cfg["fp_rf_size"])) * (
            1.0 + 0.08 * width
        )
        queues = (
            0.006 * float(cfg["rob_size"])
            + 0.01 * float(cfg["inst_queue_size"])
            + 0.008 * (float(cfg["load_queue_size"]) + float(cfg["store_queue_size"]))
            + 0.002 * float(cfg["fetch_queue_uops"])
        )
        # Cache area: ~1 mm^2 per 64 KB of SRAM plus associativity overhead.
        l1_kb = 2.0 * float(cfg["l1i_size_kb"])  # split I + D of equal size
        l2_kb = float(cfg["l2_size_kb"])
        caches = (l1_kb + l2_kb) / 64.0 * (1.0 + 0.05 * float(cfg["l2_assoc"]))
        branch_unit = (
            0.05
            + 0.00008 * float(cfg["btb_size"])
            + 0.002 * float(cfg["ras_size"])
            + (0.25 if cfg["branch_predictor"] == "TournamentBP" else 0.12)
        )
        functional_units = (
            0.09 * float(cfg["int_alu_count"])
            + 0.22 * float(cfg["int_muldiv_count"])
            + 0.28 * float(cfg["fp_alu_count"])
            + 0.42 * float(cfg["fp_muldiv_count"])
        )
        return AreaBreakdown(
            core_logic=float(core_logic),
            register_files=float(register_files),
            queues=float(queues),
            caches=float(caches),
            branch_unit=float(branch_unit),
            functional_units=float(functional_units),
        )

    # -- power ----------------------------------------------------------------
    def evaluate(
        self,
        config: Mapping,
        workload: WorkloadProfile,
        space: DesignSpace,
        performance: PerformanceResult,
    ) -> PowerResult:
        """Estimate power given the achieved performance."""
        cfg = space.validate(config)
        frequency = float(cfg["core_frequency_ghz"])
        vdd = self.technology.vdd_at(frequency)
        area = self.area(cfg, space)

        width = float(cfg["pipeline_width"])
        utilisation = float(np.clip(performance.ipc / max(width, 1.0), 0.02, 1.0))
        activity = workload.activity_factor

        # Effective switched capacitance (arbitrary units scaled to Watts by
        # ``dynamic_energy_scale``).  Structures that are exercised every
        # cycle (core logic, caches) are weighted by utilisation; leakage-like
        # clocking overhead keeps a floor even at low utilisation.
        mem_traffic = performance.cache.dram_mpki / 1000.0
        switched_capacitance = (
            area.core_logic * (0.35 + 0.65 * utilisation)
            + area.register_files * utilisation
            + area.queues * (0.3 + 0.7 * utilisation)
            + area.functional_units * utilisation * (0.5 + 0.5 * workload.mix.fp_fraction * 2.0)
            + area.branch_unit * workload.mix.branch * 4.0
            + area.caches * (0.2 + 0.8 * workload.mix.memory_fraction)
            + 2.5 * mem_traffic  # off-chip DRAM traffic energy
        )
        dynamic = (
            self.technology.dynamic_energy_scale
            * switched_capacitance
            * activity
            * vdd ** 2
            * frequency
        )
        static = self.technology.leakage_w_per_mm2 * area.total * (vdd / self.technology.nominal_vdd)
        return PowerResult(
            dynamic_power_w=float(dynamic),
            static_power_w=float(static),
            area=area,
        )

    # -- vectorized area/power ------------------------------------------------
    def area_batch(self, params: Mapping[str, np.ndarray]) -> AreaBatchBreakdown:
        """Vectorized :meth:`area` over pre-validated parameter vectors.

        *params* follows the convention of
        :meth:`repro.sim.performance.PerformanceModel.evaluate_batch`.  Area
        depends only on the configuration (not on the workload phase), so one
        call covers every SimPoint phase of a batched simulation.
        """
        width = params["pipeline_width"]

        core_logic = 0.7 + 0.18 * width ** 1.6
        register_files = 0.004 * (params["int_rf_size"] + params["fp_rf_size"]) * (
            1.0 + 0.08 * width
        )
        queues = (
            0.006 * params["rob_size"]
            + 0.01 * params["inst_queue_size"]
            + 0.008 * (params["load_queue_size"] + params["store_queue_size"])
            + 0.002 * params["fetch_queue_uops"]
        )
        l1_kb = 2.0 * params["l1i_size_kb"]  # split I + D of equal size
        l2_kb = params["l2_size_kb"]
        caches = (l1_kb + l2_kb) / 64.0 * (1.0 + 0.05 * params["l2_assoc"])
        branch_unit = (
            0.05
            + 0.00008 * params["btb_size"]
            + 0.002 * params["ras_size"]
            + np.where(params["is_tournament"], 0.25, 0.12)
        )
        functional_units = (
            0.09 * params["int_alu_count"]
            + 0.22 * params["int_muldiv_count"]
            + 0.28 * params["fp_alu_count"]
            + 0.42 * params["fp_muldiv_count"]
        )
        return AreaBatchBreakdown(
            core_logic=core_logic,
            register_files=register_files,
            queues=queues,
            caches=caches,
            branch_unit=branch_unit,
            functional_units=functional_units,
        )

    def evaluate_batch(
        self,
        params: Mapping[str, np.ndarray],
        workload: WorkloadProfile,
        performance: PerformanceBatchResult,
        *,
        area: Optional[AreaBatchBreakdown] = None,
    ) -> PowerBatchResult:
        """Vectorized :meth:`evaluate` over pre-validated parameter vectors.

        Pass a precomputed *area* (from :meth:`area_batch`) to amortise the
        workload-independent area model across SimPoint phases.  Mirrors the
        scalar arithmetic exactly so batch and scalar results agree to
        floating-point round-off.
        """
        frequency = params["core_frequency_ghz"]
        vdd = self.technology.vdd_at(frequency)
        if area is None:
            area = self.area_batch(params)

        width = params["pipeline_width"]
        utilisation = np.clip(performance.ipc / np.maximum(width, 1.0), 0.02, 1.0)
        activity = workload.activity_factor

        mem_traffic = performance.cache.dram_mpki / 1000.0
        switched_capacitance = (
            area.core_logic * (0.35 + 0.65 * utilisation)
            + area.register_files * utilisation
            + area.queues * (0.3 + 0.7 * utilisation)
            + area.functional_units * utilisation * (0.5 + 0.5 * workload.mix.fp_fraction * 2.0)
            + area.branch_unit * workload.mix.branch * 4.0
            + area.caches * (0.2 + 0.8 * workload.mix.memory_fraction)
            + 2.5 * mem_traffic  # off-chip DRAM traffic energy
        )
        dynamic = (
            self.technology.dynamic_energy_scale
            * switched_capacitance
            * activity
            * vdd ** 2
            * frequency
        )
        static = self.technology.leakage_w_per_mm2 * area.total * (vdd / self.technology.nominal_vdd)
        return PowerBatchResult(
            dynamic_power_w=dynamic,
            static_power_w=static,
            area=area,
        )
