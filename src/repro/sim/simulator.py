"""The `Simulator` facade — the drop-in substitute for gem5 + McPAT.

A :class:`Simulator` evaluates a configuration of the Table I design space on
a workload and returns IPC and power:

* the workload is first decomposed into SimPoint phases (cached per
  workload), mirroring the paper's "at most 30 clusters of ten million
  instructions" methodology;
* each phase is evaluated with the analytical performance and power models;
* results are aggregated with the SimPoint weights;
* optional log-normal measurement noise models run-to-run variation of a
  real simulation campaign (disabled by default so datasets are exactly
  reproducible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.designspace.space import Configuration, DesignSpace
from repro.designspace.spec import build_table1_space
from repro.sim.performance import PerformanceModel, PerformanceResult
from repro.sim.power import PowerModel, PowerResult
from repro.sim.technology import DEFAULT_TECHNOLOGY, TechnologyParameters
from repro.utils.rng import SeedLike, as_rng
from repro.workloads.characteristics import WorkloadProfile
from repro.workloads.simpoints import SimPointSet, generate_simpoints
from repro.workloads.spec2017 import WorkloadSuite, spec2017_suite


@dataclass(frozen=True)
class SimulationResult:
    """Aggregated metrics of one simulated (configuration, workload) pair."""

    workload: str
    ipc: float
    power_w: float
    area_mm2: float
    bips: float
    #: Energy per instruction in nano-joules; handy for DSE objectives.
    energy_per_instruction_nj: float
    #: Number of SimPoint phases aggregated into this result.
    num_phases: int

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary view (used when exporting datasets)."""
        return {
            "ipc": self.ipc,
            "power_w": self.power_w,
            "area_mm2": self.area_mm2,
            "bips": self.bips,
            "energy_per_instruction_nj": self.energy_per_instruction_nj,
        }


class Simulator:
    """Evaluate design points on workloads (gem5 + McPAT substitute).

    Parameters
    ----------
    space:
        The design space being explored; defaults to the Table I space.
    suite:
        The workload suite; defaults to the 17 SPEC CPU 2017 profiles.
    technology:
        Technology constants shared by the performance and power models.
    simpoint_phases:
        Maximum number of SimPoint phases per workload.  ``1`` disables the
        phase decomposition (each workload is a single profile) which makes
        unit tests fast and exactly analytical.
    noise_std:
        Standard deviation of multiplicative log-normal measurement noise.
        ``0`` (default) gives deterministic labels.
    seed:
        Seed controlling phase generation and measurement noise.
    """

    def __init__(
        self,
        space: Optional[DesignSpace] = None,
        suite: Optional[WorkloadSuite] = None,
        *,
        technology: TechnologyParameters = DEFAULT_TECHNOLOGY,
        simpoint_phases: int = 8,
        noise_std: float = 0.0,
        seed: SeedLike = 2017,
    ) -> None:
        if simpoint_phases < 1:
            raise ValueError(f"simpoint_phases must be >= 1, got {simpoint_phases}")
        if noise_std < 0:
            raise ValueError(f"noise_std must be >= 0, got {noise_std}")
        self.space = space if space is not None else build_table1_space()
        self.suite = suite if suite is not None else spec2017_suite()
        self.technology = technology
        self.simpoint_phases = simpoint_phases
        self.noise_std = noise_std
        self._rng = as_rng(seed)
        self._phase_seed = int(self._rng.integers(0, 2**31 - 1))
        self.performance_model = PerformanceModel(technology)
        self.power_model = PowerModel(technology)
        self._simpoint_cache: dict[str, SimPointSet] = {}
        #: Number of (config, phase) evaluations performed; exposed so
        #: experiments can report simulation budgets like the paper does.
        self.evaluation_count = 0

    # -- workload handling ---------------------------------------------------
    def workload_names(self) -> list[str]:
        """Names of all workloads known to the simulator."""
        return self.suite.names

    def _resolve_workload(self, workload: "str | WorkloadProfile") -> WorkloadProfile:
        if isinstance(workload, WorkloadProfile):
            return workload
        return self.suite[workload]

    def simpoints_for(self, workload: "str | WorkloadProfile") -> SimPointSet:
        """Return (and cache) the SimPoint decomposition of a workload."""
        profile = self._resolve_workload(workload)
        cached = self._simpoint_cache.get(profile.name)
        if cached is not None:
            return cached
        if self.simpoint_phases == 1:
            from repro.workloads.simpoints import SimPoint

            simpoints = SimPointSet(
                workload_name=profile.name,
                points=(SimPoint(index=0, weight=1.0, profile=profile),),
            )
        else:
            # Per-workload deterministic seed so adding workloads does not
            # change the phases of existing ones.
            seed = (hash(profile.name) ^ self._phase_seed) & 0x7FFFFFFF
            simpoints = generate_simpoints(
                profile, max_clusters=self.simpoint_phases, seed=seed
            )
        self._simpoint_cache[profile.name] = simpoints
        return simpoints

    # -- evaluation ------------------------------------------------------------
    def run(
        self, config: Mapping, workload: "str | WorkloadProfile"
    ) -> SimulationResult:
        """Simulate one configuration on one workload."""
        profile = self._resolve_workload(workload)
        simpoints = self.simpoints_for(profile)
        cfg = self.space.validate(config)

        ipc_values = []
        power_values = []
        area = None
        for point in simpoints:
            performance: PerformanceResult = self.performance_model.evaluate(
                cfg, point.profile, self.space
            )
            power: PowerResult = self.power_model.evaluate(
                cfg, point.profile, self.space, performance
            )
            ipc_values.append(performance.ipc)
            power_values.append(power.total_power_w)
            area = power.area_mm2
            self.evaluation_count += 1

        weights = simpoints.weights
        ipc = float(np.dot(weights, ipc_values))
        power_w = float(np.dot(weights, power_values))
        if self.noise_std > 0:
            ipc *= float(np.exp(self._rng.normal(0.0, self.noise_std)))
            power_w *= float(np.exp(self._rng.normal(0.0, self.noise_std)))

        frequency = float(cfg["core_frequency_ghz"])
        bips = ipc * frequency
        # Energy per instruction: power / instruction throughput.
        energy_nj = power_w / max(bips, 1e-9)
        return SimulationResult(
            workload=profile.name,
            ipc=ipc,
            power_w=power_w,
            area_mm2=float(area),
            bips=bips,
            energy_per_instruction_nj=float(energy_nj),
            num_phases=len(simpoints),
        )

    def run_batch(
        self, configs: list[Configuration], workload: "str | WorkloadProfile"
    ) -> list[SimulationResult]:
        """Simulate a list of configurations on one workload."""
        return [self.run(config, workload) for config in configs]

    def ipc(self, config: Mapping, workload: "str | WorkloadProfile") -> float:
        """Convenience accessor for the IPC of one run."""
        return self.run(config, workload).ipc

    def power(self, config: Mapping, workload: "str | WorkloadProfile") -> float:
        """Convenience accessor for the total power of one run."""
        return self.run(config, workload).power_w
