"""The `Simulator` facade — the drop-in substitute for gem5 + McPAT.

A :class:`Simulator` evaluates configurations of the Table I design space on
a workload and returns IPC and power:

* the workload is first decomposed into SimPoint phases (cached per
  workload), mirroring the paper's "at most 30 clusters of ten million
  instructions" methodology;
* each phase is evaluated with the analytical performance and power models;
* results are aggregated with the SimPoint weights;
* optional log-normal measurement noise models run-to-run variation of a
  real simulation campaign (disabled by default so datasets are exactly
  reproducible).

Two evaluation paths share those semantics:

* the **batch path** (:meth:`Simulator.run_batch`) encodes a whole list of
  configurations into ``(n_configs,)`` parameter vectors once, evaluates the
  analytical models over NumPy arrays per SimPoint phase, and aggregates the
  per-phase matrix with the SimPoint weights in a single matmul.  This is
  the path every dataset/DSE consumer uses and the one that scales;
* the **scalar reference path** (:meth:`Simulator.run_scalar`) evaluates one
  configuration per call through the scalar model methods.  It is kept as
  the executable specification the batch path is tested against.

:meth:`Simulator.run` is a thin wrapper over the batch path, so single-pair
lookups and batched sweeps produce identical labels.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.designspace.space import DesignSpace
from repro.designspace.spec import build_table1_space
from repro import obs
from repro.runtime.executors import resolve_broadcast
from repro.runtime.sharding import plan_sweep_shards, split_evenly
from repro.store import METRIC_COLUMNS, MeasurementStore, measurement_fingerprint
from repro.sim.performance import PerformanceModel, PerformanceResult
from repro.sim.power import PowerModel, PowerResult
from repro.sim.technology import DEFAULT_TECHNOLOGY, TechnologyParameters
from repro.utils.rng import SeedLike, as_rng
from repro.workloads.characteristics import WorkloadProfile
from repro.workloads.simpoints import SimPointSet, generate_simpoints
from repro.workloads.spec2017 import WorkloadSuite, spec2017_suite

#: Parameter produced by :meth:`Simulator.encode_batch` for the categorical
#: branch-predictor choice (`True` selects ``TournamentBP``).
IS_TOURNAMENT_KEY = "is_tournament"


def _evaluate_missing_task(
    simulator: "Simulator",
    profile_name: str,
    params: dict[str, np.ndarray],
    trace: bool,
) -> tuple[np.ndarray, "obs.WorkerTelemetry | None"]:
    """Executor task for one evaluation shard (module-level so
    :class:`~repro.runtime.executors.ProcessExecutor` can pickle it).

    *simulator* may arrive as a broadcast handle: the scatter sites
    broadcast the simulator once per batch, so a process pool pickles it
    once per worker instead of once per shard task.

    The parent has already resolved the cache/store tiers (see
    ``_run_batch_parallel``), so *params* holds only configurations that
    must be freshly simulated: the task is a pure ``_evaluate_encoded``
    call, which is what makes parent-side counter accounting exact under
    every executor kind.  When *trace* is set the evaluation runs under an
    :mod:`repro.obs` capture buffer that rides back on the return value;
    when clear the second element is ``None`` and nothing is recorded.
    """
    resolved = resolve_broadcast(simulator)
    if not trace:
        return resolved._evaluate_missing(profile_name, params), None
    return obs.run_captured(resolved._evaluate_missing, profile_name, params)


@dataclass(frozen=True)
class SimulationResult:
    """Aggregated metrics of one simulated (configuration, workload) pair."""

    workload: str
    ipc: float
    power_w: float
    area_mm2: float
    bips: float
    #: Energy per instruction in nano-joules; handy for DSE objectives.
    energy_per_instruction_nj: float
    #: Number of SimPoint phases aggregated into this result.
    num_phases: int

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary view (used when exporting datasets)."""
        return {
            "ipc": self.ipc,
            "power_w": self.power_w,
            "area_mm2": self.area_mm2,
            "bips": self.bips,
            "energy_per_instruction_nj": self.energy_per_instruction_nj,
        }


@dataclass(frozen=True)
class BatchSimulationResult:
    """Aggregated metrics of many configurations on one workload.

    Metric fields are ``(n_configs,)`` arrays whose row order follows the
    configuration list handed to :meth:`Simulator.run_batch`.  The container
    also behaves as a sequence of :class:`SimulationResult` (``len``,
    indexing, iteration), so legacy per-config consumers keep working.
    """

    workload: str
    ipc: np.ndarray
    power_w: np.ndarray
    area_mm2: np.ndarray
    bips: np.ndarray
    energy_per_instruction_nj: np.ndarray
    #: Number of SimPoint phases aggregated into every row.
    num_phases: int

    def __len__(self) -> int:
        return int(self.ipc.shape[0])

    def __getitem__(self, index: int) -> SimulationResult:
        """Scalar view of the *index*-th configuration's result."""
        i = int(index)
        return SimulationResult(
            workload=self.workload,
            ipc=float(self.ipc[i]),
            power_w=float(self.power_w[i]),
            area_mm2=float(self.area_mm2[i]),
            bips=float(self.bips[i]),
            energy_per_instruction_nj=float(self.energy_per_instruction_nj[i]),
            num_phases=self.num_phases,
        )

    def __iter__(self) -> Iterator[SimulationResult]:
        for i in range(len(self)):
            yield self[i]

    def as_dict(self) -> dict[str, np.ndarray]:
        """Flat dictionary of metric vectors (used when exporting datasets)."""
        return {
            "ipc": self.ipc,
            "power_w": self.power_w,
            "area_mm2": self.area_mm2,
            "bips": self.bips,
            "energy_per_instruction_nj": self.energy_per_instruction_nj,
        }

    def objective(self, name: str) -> np.ndarray:
        """Metric vector by objective name.

        Accepts the simulator's metric names plus the dataset-layer alias
        ``"power"`` for ``"power_w"``.
        """
        if name == "power":
            name = "power_w"
        try:
            return self.as_dict()[name]
        except KeyError:
            raise KeyError(
                f"unknown objective {name!r}; available: "
                f"{sorted(self.as_dict()) + ['power']}"
            ) from None


class Simulator:
    """Evaluate design points on workloads (gem5 + McPAT substitute).

    Parameters
    ----------
    space:
        The design space being explored; defaults to the Table I space.
    suite:
        The workload suite; defaults to the 17 SPEC CPU 2017 profiles.
    technology:
        Technology constants shared by the performance and power models.
    simpoint_phases:
        Maximum number of SimPoint phases per workload.  ``1`` disables the
        phase decomposition (each workload is a single profile) which makes
        unit tests fast and exactly analytical.
    noise_std:
        Standard deviation of multiplicative log-normal measurement noise.
        ``0`` (default) gives deterministic labels.
    seed:
        Seed controlling phase generation and measurement noise.
    evaluation_cache:
        When true, every aggregated (configuration, workload) result is
        memoized by value, so re-simulating a configuration an active-DSE
        loop has already measured is free.  Only available in noise-free
        mode (a cache would break the run-to-run variation noise models).

        **Concurrency invariant**: the cache dict is only ever *written*
        by the parent between evaluation calls — never from inside a
        parallel section.  Parallel paths (``executor=`` on
        :meth:`run_batch` / :meth:`run_sweep`) walk the cache/store tiers
        parent-side (:meth:`_lookup_tiers`), scatter only the missing
        configurations, and merge the worker rows into the parent cache
        deterministically, in shard order, after all workers join.
        ``evaluation_count`` / ``store_hit_count`` are therefore exact —
        equal to the serial run — under every executor kind, and the
        returned metric arrays are bitwise identical either way.
    evaluation_cache_size:
        Optional entry cap for the evaluation cache (requires
        ``evaluation_cache=True``).  Eviction is FIFO in insertion order —
        deliberately not LRU, because LRU reads would reorder the dict and
        violate the read-only-during-parallel-sections invariant above.
        With a store attached, evicted entries are still served from the
        store tier without re-simulation.
    store:
        Optional persistent measurement store (a
        :class:`repro.store.MeasurementStore` or a path to one) — the
        durable tier *below* the in-memory cache.  Lookups read through
        ``in-memory dict -> store -> simulate``; freshly simulated rows are
        batch-flushed to the store after each :meth:`run_batch` /
        :meth:`run_sweep` join (one atomic segment per flush).  Store hits
        produce bitwise-identical metric rows and are counted in
        ``store_hit_count``, not ``evaluation_count`` — so a warm campaign
        over a populated store reports ``evaluation_count == 0`` while
        returning exactly the cold campaign's results.  Requires noise-free
        mode, like the cache.  Pickled simulators (ProcessExecutor workers)
        reopen the store read-only from its path, so shard tasks see every
        measurement flushed before the parallel section.
    """

    def __init__(
        self,
        space: Optional[DesignSpace] = None,
        suite: Optional[WorkloadSuite] = None,
        *,
        technology: TechnologyParameters = DEFAULT_TECHNOLOGY,
        simpoint_phases: int = 8,
        noise_std: float = 0.0,
        seed: SeedLike = 2017,
        evaluation_cache: bool = False,
        evaluation_cache_size: Optional[int] = None,
        store: Optional[Union[MeasurementStore, str, os.PathLike]] = None,
    ) -> None:
        if simpoint_phases < 1:
            raise ValueError(f"simpoint_phases must be >= 1, got {simpoint_phases}")
        if noise_std < 0:
            raise ValueError(f"noise_std must be >= 0, got {noise_std}")
        if evaluation_cache and noise_std > 0:
            raise ValueError(
                "evaluation_cache requires noise-free mode (noise_std == 0): "
                "cached labels would hide the modelled run-to-run variation"
            )
        if evaluation_cache_size is not None:
            if not evaluation_cache:
                raise ValueError(
                    "evaluation_cache_size requires evaluation_cache=True"
                )
            if evaluation_cache_size < 1:
                raise ValueError(
                    f"evaluation_cache_size must be >= 1, got {evaluation_cache_size}"
                )
        self.space = space if space is not None else build_table1_space()
        self.suite = suite if suite is not None else spec2017_suite()
        self.technology = technology
        self.simpoint_phases = simpoint_phases
        self.noise_std = noise_std
        self._rng = as_rng(seed)
        self._phase_seed = int(self._rng.integers(0, 2**31 - 1))
        self.performance_model = PerformanceModel(technology)
        self.power_model = PowerModel(technology)
        self._simpoint_cache: dict[str, SimPointSet] = {}
        #: Per-workload memoized (weights, phase profiles) pair used by the
        #: batch path, so repeated sweeps skip the SimPointSet unpacking.
        self._phase_table_cache: dict[str, tuple[np.ndarray, tuple[WorkloadProfile, ...]]] = {}
        #: Keyed (workload, config-values) -> metric row cache; see
        #: ``evaluation_cache`` above.
        self._evaluation_cache: Optional[dict[tuple, np.ndarray]] = (
            {} if evaluation_cache else None
        )
        self._evaluation_cache_size = evaluation_cache_size
        #: Number of (config, phase) evaluations performed; exposed so
        #: experiments can report simulation budgets like the paper does.
        #: Evaluation-cache hits are free and therefore not counted.
        self.evaluation_count = 0
        #: Number of configurations served from the persistent store tier
        #: (not counted in ``evaluation_count``; the gap between the two is
        #: what the warm-start equivalence tests pin).
        self.store_hit_count = 0
        self._store: Optional[MeasurementStore] = None
        #: Rows simulated since the last flush but not yet in the store;
        #: written as one atomic segment per run_batch/run_sweep join.
        self._store_pending: list[tuple[str, tuple, np.ndarray]] = []
        self._store_pending_keys: set[tuple[str, tuple]] = set()
        if store is not None:
            self.attach_store(store)

    # -- persistent store ------------------------------------------------------
    @property
    def store(self) -> Optional[MeasurementStore]:
        """The attached persistent measurement store, if any."""
        return self._store

    def measurement_fingerprint(self) -> dict:
        """Fingerprint identifying this simulator's measurement stream.

        Covers the design-space spec, the metric row layout, the SimPoint
        settings (phase count and derived phase seed), the technology
        constants, and noise-free mode — exactly the fields that must agree
        for two simulators to produce interchangeable metric rows.  Used to
        match simulators to measurement stores.
        """
        return measurement_fingerprint(
            space=self.space,
            metrics=METRIC_COLUMNS,
            simpoint_phases=self.simpoint_phases,
            phase_seed=self._phase_seed,
            technology=self.technology,
            noise_free=self.noise_std == 0.0,
        )

    def attach_store(
        self,
        store: Union[MeasurementStore, str, os.PathLike],
        *,
        read_only: bool = False,
    ) -> MeasurementStore:
        """Attach a persistent measurement store (path or open store).

        A path is opened (and created if needed) under this simulator's
        :meth:`measurement_fingerprint`; an already-open store must match
        that fingerprint (:class:`repro.store.StoreMismatchError`
        otherwise).  Requires noise-free mode, and at most one store per
        simulator.  Returns the attached store.
        """
        if self._store is not None:
            raise ValueError("a measurement store is already attached")
        if self.noise_std > 0:
            raise ValueError(
                "a measurement store requires noise-free mode (noise_std == 0): "
                "stored labels would hide the modelled run-to-run variation"
            )
        if isinstance(store, (str, os.PathLike)):
            store = MeasurementStore(
                store, self.measurement_fingerprint(), read_only=read_only
            )
        else:
            store.require_fingerprint(self.measurement_fingerprint())
        self._store = store
        return store

    def refresh_store(self) -> int:
        """Pick up store segments appended by concurrent writers.

        Called by the campaign runtime at round boundaries so concurrent
        campaigns over the same store amortise each other mid-run.  Returns
        the number of new records loaded (0 without a store).
        """
        if self._store is None:
            return 0
        added = self._store.refresh()
        obs.add_counter("store.refresh_records", added)
        return added

    def _flush_store(self) -> None:
        """Write pending freshly-simulated rows as one atomic segment."""
        if self._store is None or not self._store_pending:
            return
        with obs.span("store.flush", records=len(self._store_pending)):
            self._store.put_batch(self._store_pending)
        obs.add_counter("store.flushes", 1)
        obs.add_counter("store.flushed_records", len(self._store_pending))
        self._store_pending.clear()
        self._store_pending_keys.clear()

    # -- workload handling ---------------------------------------------------
    def workload_names(self) -> list[str]:
        """Names of all workloads known to the simulator."""
        return self.suite.names

    def _resolve_workload(self, workload: "str | WorkloadProfile") -> WorkloadProfile:
        if isinstance(workload, WorkloadProfile):
            return workload
        return self.suite[workload]

    def simpoints_for(self, workload: "str | WorkloadProfile") -> SimPointSet:
        """Return (and cache) the SimPoint decomposition of a workload."""
        profile = self._resolve_workload(workload)
        cached = self._simpoint_cache.get(profile.name)
        if cached is not None:
            return cached
        if self.simpoint_phases == 1:
            from repro.workloads.simpoints import SimPoint

            simpoints = SimPointSet(
                workload_name=profile.name,
                points=(SimPoint(index=0, weight=1.0, profile=profile),),
            )
        else:
            # Per-workload deterministic seed so adding workloads does not
            # change the phases of existing ones.  zlib.crc32 (not Python's
            # hash(), which is randomized per process) keeps phased labels
            # reproducible across processes without pinning PYTHONHASHSEED.
            name_hash = zlib.crc32(profile.name.encode("utf-8"))
            seed = (name_hash ^ self._phase_seed) & 0x7FFFFFFF
            simpoints = generate_simpoints(
                profile, max_clusters=self.simpoint_phases, seed=seed
            )
        self._simpoint_cache[profile.name] = simpoints
        return simpoints

    def _phase_table(
        self, profile: WorkloadProfile
    ) -> tuple[np.ndarray, tuple[WorkloadProfile, ...]]:
        """Memoized (weights, phase profiles) view of a workload's SimPoints."""
        cached = self._phase_table_cache.get(profile.name)
        if cached is not None:
            return cached
        simpoints = self.simpoints_for(profile)
        table = (simpoints.weights, tuple(point.profile for point in simpoints))
        self._phase_table_cache[profile.name] = table
        return table

    # -- batch encoding --------------------------------------------------------
    def encode_batch(
        self, configs: Sequence[Mapping]
    ) -> tuple[dict[str, np.ndarray], list[tuple]]:
        """Validate and encode configurations into model-ready vectors.

        Returns
        -------
        params:
            Mapping from parameter name to an ``(n_configs,)`` ``float64``
            vector, plus the boolean vector :data:`IS_TOURNAMENT_KEY`
            encoding the categorical branch-predictor choice.
        keys:
            One hashable per configuration (its values in declaration
            order); used by the evaluation cache.
        """
        validated = [self.space.validate(config) for config in configs]
        names = self.space.parameter_names
        keys = [tuple(cfg[name] for name in names) for cfg in validated]
        params: dict[str, np.ndarray] = {
            name: np.array([cfg[name] for cfg in validated], dtype=np.float64)
            for name in names
            if name != "branch_predictor"
        }
        params[IS_TOURNAMENT_KEY] = np.array(
            [cfg["branch_predictor"] == "TournamentBP" for cfg in validated], dtype=bool
        )
        return params, keys

    # -- evaluation ------------------------------------------------------------
    def run(
        self, config: Mapping, workload: "str | WorkloadProfile"
    ) -> SimulationResult:
        """Simulate one configuration on one workload.

        Thin wrapper over :meth:`run_batch` with a single-element batch, so
        scalar lookups and batched sweeps produce identical labels (and, in
        noisy mode, consume the measurement-noise stream identically).
        """
        return self.run_batch([config], workload)[0]

    def run_batch(
        self,
        configs: Sequence[Mapping],
        workload: "str | WorkloadProfile",
        *,
        executor=None,
    ) -> BatchSimulationResult:
        """Simulate a list of configurations on one workload, vectorized.

        The configurations are encoded once into ``(n_configs,)`` parameter
        vectors; every SimPoint phase is then a handful of NumPy array
        operations instead of ``n_configs`` Python-level model calls, and the
        per-phase metric matrix is aggregated with the SimPoint weights in
        one matmul.  With ``evaluation_cache`` enabled, configurations seen
        before (per workload) are served from the cache and only the novel
        ones are evaluated.

        With an *executor* (:mod:`repro.runtime.executors`) of width > 1,
        the batch is split into ``executor.jobs`` contiguous shards
        evaluated in parallel and merged in shard order — bitwise identical
        to the serial result (noise-free mode only; see
        ``docs/runtime.md`` for the determinism contract).
        """
        profile = self._resolve_workload(workload)
        params, keys = self.encode_batch(configs)
        with obs.span("sim.run_batch", workload=profile.name, configs=len(keys)):
            if executor is None or executor.jobs <= 1 or len(keys) <= 1:
                result = self._run_batch_encoded(profile, params, keys)
            else:
                result = self._run_batch_parallel(profile, params, keys, executor)
            self._flush_store()
        return result

    def _run_batch_encoded(
        self,
        profile: WorkloadProfile,
        params: dict[str, np.ndarray],
        keys: list[tuple],
    ) -> BatchSimulationResult:
        """Batch evaluation core over already-encoded configurations.

        Shared by :meth:`run_batch` (which encodes first) and
        :meth:`run_sweep` (which encodes once for many workloads): one
        full-range "shard" evaluated in place, followed by the same
        parent-side merge (cache insertion, counter) the parallel paths
        apply after their join — so serial and sharded execution share a
        single implementation of the keyed-cache protocol.
        """
        metric_rows, count, store_hits = self._evaluate_shard(profile.name, params, keys)
        return self._absorb_rows(profile, keys, metric_rows, count, store_hits)

    # -- parallel evaluation -----------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle support for :class:`~repro.runtime.executors.ProcessExecutor`.

        The keyed evaluation cache is **not** shipped to worker processes:
        each worker starts with an empty per-worker cache (shipping a large
        parent cache with every shard task would dwarf the work), and the
        parent merges the freshly evaluated rows into its own cache after
        the join — see the ``evaluation_cache`` invariant in the class
        docstring.

        An attached measurement store *is* shipped, but only as its path:
        workers reopen it read-only (see
        :meth:`repro.store.MeasurementStore.__getstate__`), so shard tasks
        see every measurement flushed before the parallel section.  Pending
        unflushed rows stay with the parent — workers never write the store.
        """
        state = self.__dict__.copy()
        if state["_evaluation_cache"] is not None:
            state["_evaluation_cache"] = {}
        state["_store_pending"] = []
        state["_store_pending_keys"] = set()
        return state

    def _require_parallel_safe(self) -> None:
        if self.noise_std > 0:
            raise ValueError(
                "parallel evaluation requires noise-free mode (noise_std == 0): "
                "sharding would consume the measurement-noise stream in shard "
                "order instead of configuration order"
            )

    def _evaluate_shard(
        self, profile_name: str, params: dict[str, np.ndarray], keys: list[tuple]
    ) -> tuple[np.ndarray, int, int]:
        """Serial tier walk: ``(rows, evaluation count, store hits)``.

        Reads the evaluation cache but **never writes it** and never touches
        ``evaluation_count`` — all shared-state mutation happens afterwards
        in :meth:`_absorb_rows`.  Lookups read through the tiers in order:
        in-memory cache, then the persistent store, then simulation of the
        remainder.  The parallel paths run the same two stages
        (:meth:`_lookup_tiers` parent-side, :meth:`_evaluate_missing` in
        workers) with a scatter in between.
        """
        profile = self._resolve_workload(profile_name)
        _, phases = self._phase_table(profile)
        n = len(keys)
        metric_rows = np.empty((n, 5), dtype=np.float64)
        missing, store_hits = self._lookup_tiers(profile.name, keys, metric_rows)
        if missing:
            if len(missing) == n:
                fresh_params = params
            else:
                index = np.asarray(missing, dtype=np.int64)
                fresh_params = {name: values[index] for name, values in params.items()}
            metric_rows[missing] = self._evaluate_missing(profile.name, fresh_params)
        return metric_rows, len(phases) * len(missing), store_hits

    def _lookup_tiers(
        self, profile_name: str, keys: list[tuple], metric_rows: np.ndarray
    ) -> tuple[list[int], int]:
        """Serve *keys* from the cache/store tiers, filling *metric_rows*.

        Read-only over shared state.  Returns the indices that missed both
        tiers (and must be simulated) plus the persistent-store hit count.
        The parallel paths call this parent-side *before* scattering, so
        only genuinely missing configurations travel to workers and the
        tier accounting is exact under every executor kind.
        """
        n = len(keys)
        if self._evaluation_cache is not None:
            missing = []
            for i, key in enumerate(keys):
                cached = self._evaluation_cache.get((profile_name, key))
                if cached is None:
                    missing.append(i)
                else:
                    metric_rows[i] = cached
        else:
            missing = list(range(n))
        store_hits = 0
        if missing and self._store is not None:
            still_missing = []
            for i in missing:
                stored = self._store.get(profile_name, keys[i])
                if stored is None:
                    still_missing.append(i)
                else:
                    metric_rows[i] = stored
                    store_hits += 1
            missing = still_missing
        return missing, store_hits

    def _evaluate_missing(
        self, profile_name: str, params: dict[str, np.ndarray]
    ) -> np.ndarray:
        """Freshly simulate already-encoded configurations (no tier reads).

        The evaluation core both the serial tier walk and the scattered
        shard tasks end in; the ``sim.evaluate`` span therefore appears
        identically in untraced-serial, captured-serial and worker-side
        traces.
        """
        profile = self._resolve_workload(profile_name)
        weights, phases = self._phase_table(profile)
        n = params["core_frequency_ghz"].shape[0]
        with obs.span("sim.evaluate", workload=profile.name, configs=n):
            return self._evaluate_encoded(params, weights, phases)

    def _absorb_rows(
        self,
        profile: WorkloadProfile,
        keys: list[tuple],
        metric_rows: np.ndarray,
        count: int,
        store_hits: int = 0,
    ) -> BatchSimulationResult:
        """Parent-side merge: install rows in the cache, count, assemble.

        The single place shared state is mutated — the serial path and the
        post-join parallel paths both end here, with *metric_rows* already
        in configuration order.  Rows whose key the store does not hold yet
        are queued for the next :meth:`_flush_store`; the cache is trimmed
        FIFO when ``evaluation_cache_size`` is set.
        """
        self.evaluation_count += count
        self.store_hit_count += store_hits
        num_phases = len(self._phase_table(profile)[1])
        fresh = count // num_phases if num_phases else 0
        obs.add_counter("sim.configs", len(keys))
        obs.add_counter("sim.fresh", fresh)
        obs.add_counter("sim.cache_hits", len(keys) - fresh - store_hits)
        obs.add_counter("sim.store_hits", store_hits)
        obs.add_counter("sim.evaluations", count)
        cache = self._evaluation_cache
        if cache is not None:
            for i, key in enumerate(keys):
                cache[(profile.name, key)] = metric_rows[i]
            if self._evaluation_cache_size is not None:
                evicted = 0
                while len(cache) > self._evaluation_cache_size:
                    cache.pop(next(iter(cache)))
                    evicted += 1
                if evicted:
                    obs.add_counter("sim.cache_evictions", evicted)
        if self._store is not None and not self._store.read_only:
            for i, key in enumerate(keys):
                store_key = (profile.name, key)
                if (
                    self._store.get(profile.name, key) is None
                    and store_key not in self._store_pending_keys
                ):
                    self._store_pending_keys.add(store_key)
                    self._store_pending.append(
                        (profile.name, key, metric_rows[i].copy())
                    )
        return BatchSimulationResult(
            workload=profile.name,
            ipc=metric_rows[:, 0].copy(),
            power_w=metric_rows[:, 1].copy(),
            area_mm2=metric_rows[:, 2].copy(),
            bips=metric_rows[:, 3].copy(),
            energy_per_instruction_nj=metric_rows[:, 4].copy(),
            num_phases=len(self._phase_table(profile)[1]),
        )

    def _run_batch_parallel(
        self,
        profile: WorkloadProfile,
        params: dict[str, np.ndarray],
        keys: list[tuple],
        executor,
    ) -> BatchSimulationResult:
        """Sharded :meth:`run_batch` core: prefilter, scatter, join in order.

        The parent walks the cache/store tiers first (it is the only actor
        with full tier visibility — process workers start with an empty
        pickled cache) and scatters *only the missing configurations* in
        ``executor.jobs`` contiguous shards.  Workers run the pure
        evaluation core, so the parent's ``evaluation_count`` /
        ``store_hit_count`` accounting is exact — equal to the serial run —
        under every executor kind, and no worker re-simulates a
        configuration the parent already has.  Bitwise equality with the
        serial result is guaranteed by the partition-invariance contract
        (docs/runtime.md): a configuration's labels do not depend on the
        batch it was evaluated in.
        """
        self._require_parallel_safe()
        _, phases = self._phase_table(profile)  # warm before pickling / fan-out
        n = len(keys)
        metric_rows = np.empty((n, 5), dtype=np.float64)
        missing, store_hits = self._lookup_tiers(profile.name, keys, metric_rows)
        if missing:
            self._scatter_missing(profile, params, missing, metric_rows, executor)
        return self._absorb_rows(
            profile, keys, metric_rows, len(phases) * len(missing), store_hits
        )

    def _scatter_missing(
        self,
        profile: WorkloadProfile,
        params: dict[str, np.ndarray],
        missing: list[int],
        metric_rows: np.ndarray,
        executor,
    ) -> None:
        """Evaluate *missing* rows through *executor*, in shard order.

        Fills ``metric_rows[missing]`` in place; worker telemetry buffers
        (when tracing) are spliced into the session in shard order after
        each join, under the caller's active span.
        """
        index = np.asarray(missing, dtype=np.int64)
        shards = split_evenly(len(missing), executor.jobs)
        simulator_ref = executor.broadcast(self)
        trace = obs.trace_active()
        futures = [
            executor.submit(
                _evaluate_missing_task,
                simulator_ref,
                profile.name,
                {
                    name: values[index[shard.start : shard.stop]]
                    for name, values in params.items()
                },
                trace,
            )
            for shard in shards
        ]
        for shard, future in zip(shards, futures):
            rows, telemetry = future.result()
            metric_rows[index[shard.start : shard.stop]] = rows
            obs.splice(telemetry)

    def _evaluate_encoded(
        self,
        params: dict[str, np.ndarray],
        weights: np.ndarray,
        phases: tuple[WorkloadProfile, ...],
    ) -> np.ndarray:
        """Vectorized evaluation core: encoded params -> ``(n, 5)`` metric rows.

        Row layout: ``ipc, power_w, area_mm2, bips, energy_per_instruction_nj``.
        """
        n = params["core_frequency_ghz"].shape[0]
        num_phases = len(phases)
        ipc_phases = np.empty((num_phases, n), dtype=np.float64)
        power_phases = np.empty((num_phases, n), dtype=np.float64)

        # Area only depends on the configuration; compute it once and share
        # it across phases (the scalar path recomputes it per phase).
        area = self.power_model.area_batch(params)
        for row, phase_profile in enumerate(phases):
            performance = self.performance_model.evaluate_batch(params, phase_profile)
            power = self.power_model.evaluate_batch(
                params, phase_profile, performance, area=area
            )
            ipc_phases[row] = performance.ipc
            power_phases[row] = power.total_power_w

        # Weighted SimPoint aggregation as an elementwise multiply + axis-0
        # reduction rather than ``weights @ phases``: BLAS gemv picks
        # different kernels by column count, so the matmul's per-config
        # result could change in ULPs with the batch size — breaking the
        # bitwise partition-invariance contract (a config's labels must not
        # depend on which shard or batch it was evaluated in; see
        # docs/runtime.md).  The elementwise form touches each column
        # independently, so any split of the batch reproduces the full
        # batch exactly.
        ipc = (weights[:, None] * ipc_phases).sum(axis=0)
        power_w = (weights[:, None] * power_phases).sum(axis=0)
        if self.noise_std > 0:
            # Draw per-config (ipc, power) noise pairs in row-major order so
            # the stream matches the legacy one-pair-per-run() consumption.
            noise = self._rng.normal(0.0, self.noise_std, size=(n, 2))
            ipc = ipc * np.exp(noise[:, 0])
            power_w = power_w * np.exp(noise[:, 1])

        frequency = params["core_frequency_ghz"]
        bips = ipc * frequency
        # Energy per instruction: power / instruction throughput.
        energy_nj = power_w / np.maximum(bips, 1e-9)
        return np.stack([ipc, power_w, area.total, bips, energy_nj], axis=1)

    def run_sweep(
        self,
        configs: Sequence[Mapping],
        workloads: Optional[Sequence["str | WorkloadProfile"]] = None,
        *,
        executor=None,
    ) -> dict[str, BatchSimulationResult]:
        """Simulate the same configurations on many workloads.

        The cross-workload layout every dataset in the reproduction uses
        (Fig. 2 compares label distributions over a common configuration
        set).  Defaults to every workload the simulator knows.  The
        configurations are validated and encoded once, not per workload.

        With an *executor* of width > 1 the ``configs x workloads`` grid is
        split into deterministic ``(workload, configuration shard)`` tasks
        (:func:`repro.runtime.sharding.plan_sweep_shards`) evaluated in
        parallel; per-workload results are merged in shard order after all
        tasks join, so the sweep is bitwise identical to the serial one
        (noise-free mode only).
        """
        targets = list(workloads) if workloads is not None else self.workload_names()
        params, keys = self.encode_batch(configs)
        profiles = [self._resolve_workload(workload) for workload in targets]
        with obs.span("sim.run_sweep", workloads=len(profiles), configs=len(keys)):
            # Unlike run_batch, a single configuration still parallelises
            # here: the workload axis alone yields independent tasks.
            if executor is None or executor.jobs <= 1 or not profiles or not keys:
                results = {
                    profile.name: self._run_batch_encoded(profile, params, keys)
                    for profile in profiles
                }
                self._flush_store()
                return results

            self._require_parallel_safe()
            for profile in profiles:
                self._phase_table(profile)  # warm before pickling / fan-out
            # Parent-side tier prefilter, as in _run_batch_parallel: only
            # tier-missing configurations are scattered, so counters stay
            # exact under every executor kind and warm rows never travel.
            rows_by_name: dict[str, np.ndarray] = {}
            missing_by_name: dict[str, list[int]] = {}
            hits_by_name: dict[str, int] = {}
            for profile in profiles:
                metric_rows = np.empty((len(keys), 5), dtype=np.float64)
                missing, store_hits = self._lookup_tiers(
                    profile.name, keys, metric_rows
                )
                rows_by_name[profile.name] = metric_rows
                missing_by_name[profile.name] = missing
                hits_by_name[profile.name] = store_hits
            simulator_ref = executor.broadcast(self)
            trace = obs.trace_active()
            tasks = []
            for profile in profiles:
                missing = missing_by_name[profile.name]
                if not missing:
                    continue
                index = np.asarray(missing, dtype=np.int64)
                for shard in plan_sweep_shards(
                    len(missing), len(profiles), executor.jobs
                ):
                    sub = index[shard.start : shard.stop]
                    tasks.append(
                        (
                            profile.name,
                            sub,
                            executor.submit(
                                _evaluate_missing_task,
                                simulator_ref,
                                profile.name,
                                {
                                    name: values[sub]
                                    for name, values in params.items()
                                },
                                trace,
                            ),
                        )
                    )
            # Join everything before mutating shared state (cache,
            # counters): thread workers may only ever *read* the
            # evaluation cache.
            joined = [(name, sub, future.result()) for name, sub, future in tasks]
            for name, sub, (rows, telemetry) in joined:
                rows_by_name[name][sub] = rows
                obs.splice(telemetry)
            results = {
                profile.name: self._absorb_rows(
                    profile,
                    keys,
                    rows_by_name[profile.name],
                    len(self._phase_table(profile)[1])
                    * len(missing_by_name[profile.name]),
                    hits_by_name[profile.name],
                )
                for profile in profiles
            }
            self._flush_store()
            return results

    def run_scalar(
        self, config: Mapping, workload: "str | WorkloadProfile"
    ) -> SimulationResult:
        """Reference scalar path: one configuration through the scalar models.

        Kept as the executable specification of :meth:`run_batch` — the
        equivalence tests assert that the vectorized path reproduces these
        labels, and the throughput benchmark measures its speed-up against
        this loop.  Semantically identical to :meth:`run` (in noisy mode both
        consume one (ipc, power) noise pair per call).
        """
        profile = self._resolve_workload(workload)
        simpoints = self.simpoints_for(profile)
        cfg = self.space.validate(config)

        ipc_values = []
        power_values = []
        area = None
        for point in simpoints:
            performance: PerformanceResult = self.performance_model.evaluate(
                cfg, point.profile, self.space
            )
            power: PowerResult = self.power_model.evaluate(
                cfg, point.profile, self.space, performance
            )
            ipc_values.append(performance.ipc)
            power_values.append(power.total_power_w)
            area = power.area_mm2
            self.evaluation_count += 1

        weights = simpoints.weights
        ipc = float(np.dot(weights, ipc_values))
        power_w = float(np.dot(weights, power_values))
        if self.noise_std > 0:
            ipc *= float(np.exp(self._rng.normal(0.0, self.noise_std)))
            power_w *= float(np.exp(self._rng.normal(0.0, self.noise_std)))

        frequency = float(cfg["core_frequency_ghz"])
        bips = ipc * frequency
        # Energy per instruction: power / instruction throughput.
        energy_nj = power_w / max(bips, 1e-9)
        return SimulationResult(
            workload=profile.name,
            ipc=ipc,
            power_w=power_w,
            area_mm2=float(area),
            bips=bips,
            energy_per_instruction_nj=float(energy_nj),
            num_phases=len(simpoints),
        )

    def ipc(self, config: Mapping, workload: "str | WorkloadProfile") -> float:
        """Convenience accessor for the IPC of one run."""
        return self.run(config, workload).ipc

    def power(self, config: Mapping, workload: "str | WorkloadProfile") -> float:
        """Convenience accessor for the total power of one run."""
        return self.run(config, workload).power_w
