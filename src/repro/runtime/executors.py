"""Pluggable executors behind one tiny, determinism-friendly interface.

The runtime never exposes completion order to its callers: work is
submitted, futures are collected, and results are merged in the order the
work was *submitted* (see :mod:`repro.runtime.sharding`).  An
:class:`Executor` therefore only needs ``submit`` — everything else
(``starmap``, context management) is shared plumbing.

Three implementations cover the repository's needs:

* :class:`SerialExecutor` — runs the work inline at ``submit`` time.  It is
  the executable reference every parallel result is compared against
  (``tests/test_runtime_equivalence.py`` pins thread/process == serial
  **bitwise**), and the degenerate case ``jobs=1`` resolves to.
* :class:`ThreadExecutor` — :class:`concurrent.futures.ThreadPoolExecutor`.
  The default for campaigns: NumPy kernels release the GIL, nothing needs
  to be picklable, and workers share the process (so e.g. the simulator's
  memoized phase tables are shared for free).
* :class:`ProcessExecutor` — :class:`concurrent.futures.ProcessPoolExecutor`.
  True parallelism for pure-Python hot loops (tree-surrogate refits, the
  scalar models); task functions and arguments must be picklable, and
  worker-side state mutations are discarded (see the per-worker
  evaluation-cache contract on :class:`repro.sim.simulator.Simulator`).

``resolve_executor`` maps the user-facing ``jobs=N`` knob
(:meth:`MetaDSE.explore`, ``python -m repro dse --jobs N``) to an executor
instance.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Optional, Sequence


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given: one per CPU core."""
    return os.cpu_count() or 1


class BroadcastHandle:
    """Lightweight stand-in for a value broadcast to process-pool workers.

    Produced by :meth:`ProcessExecutor.broadcast`; consumed worker-side by
    :func:`resolve_broadcast`.  ``payload`` is the pickled value for the
    warm-pool fallback path; it is ``None`` when the value was delivered
    through the pool initializer instead.
    """

    __slots__ = ("key", "payload")

    def __init__(self, key: str, payload: Optional[bytes] = None) -> None:
        self.key = key
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        via = "initializer" if self.payload is None else f"{len(self.payload)}B"
        return f"BroadcastHandle({self.key!r}, {via})"


#: Worker-side cache of broadcast values, keyed by handle key.  Filled by
#: the pool initializer (cold pools) or lazily on first resolve (warm
#: pools); either way each worker materialises a broadcast value once.
_WORKER_BROADCASTS: dict[str, object] = {}


def _install_broadcasts(payloads: dict[str, bytes]) -> None:
    """Process-pool initializer: unpickle broadcast values once per worker."""
    for key, payload in payloads.items():
        _WORKER_BROADCASTS[key] = pickle.loads(payload)


def resolve_broadcast(value):
    """Materialise *value* if it is a :class:`BroadcastHandle`.

    Non-handles pass through unchanged, so task functions can resolve
    unconditionally and stay executor-agnostic (serial and thread executors
    broadcast by identity).  Handle resolution hits the worker's cache
    first; a warm-pool handle that misses unpickles its carried payload and
    caches it, so later tasks on the same worker reuse the object.
    """
    if not isinstance(value, BroadcastHandle):
        return value
    cached = _WORKER_BROADCASTS.get(value.key)
    if cached is None:
        if value.payload is None:
            raise RuntimeError(
                f"broadcast {value.key!r} was not installed in this worker "
                f"and carries no payload"
            )
        cached = pickle.loads(value.payload)
        _WORKER_BROADCASTS[value.key] = cached
    return cached


class Executor:
    """Minimal executor interface: ``submit`` returning a future.

    Attributes
    ----------
    kind:
        Short name (``"serial"`` / ``"thread"`` / ``"process"``) used in
        reports and error messages.
    jobs:
        The parallelism width.  Sharding layers size their work splits from
        this (never from completion timing), so the *shape* of the
        computation is a pure function of ``(inputs, jobs)``.
    """

    kind: str = "abstract"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        raise NotImplementedError

    def starmap(self, fn: Callable, argument_tuples: Iterable[tuple]) -> list:
        """Apply *fn* to every argument tuple; results in submission order.

        All work is submitted before the first result is awaited, so the
        tasks run concurrently; the returned list order is the input order
        regardless of completion order.
        """
        futures = [self.submit(fn, *arguments) for arguments in argument_tuples]
        return [future.result() for future in futures]

    def broadcast(self, value):
        """Publish *value* once for reuse across this executor's tasks.

        The returned object substitutes for *value* in ``submit`` argument
        lists; task functions recover it with :func:`resolve_broadcast`.
        In-process executors broadcast by identity (the value itself);
        :class:`ProcessExecutor` overrides this to pickle the value once
        and hand out a :class:`BroadcastHandle`, so a simulator shared by
        hundreds of shard tasks crosses the pickle boundary once per
        worker instead of once per task.
        """
        return value

    def shutdown(self, wait: bool = True) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """Run everything inline at ``submit`` time (the reference executor)."""

    kind = "serial"

    def __init__(self) -> None:
        super().__init__(jobs=1)

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except Exception as error:  # KeyboardInterrupt/SystemExit propagate
            future.set_exception(error)
        return future


class _PoolExecutor(Executor):
    """Shared plumbing for the two ``concurrent.futures`` wrappers."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__(jobs if jobs is not None else default_jobs())
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        if self._pool is None:
            # Lazy: constructing an executor costs nothing until used, so
            # APIs can build one speculatively (e.g. from a CLI flag).
            self._pool = self._make_pool()
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None


class ThreadExecutor(_PoolExecutor):
    """Thread-pool executor (shared memory, no pickling)."""

    kind = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.jobs)


class ProcessExecutor(_PoolExecutor):
    """Process-pool executor (true parallelism, picklable tasks only).

    Values shared across many tasks should go through :meth:`broadcast`:
    each distinct object is pickled exactly once in the parent, delivered
    to workers through the pool initializer (cold pool) or a cached
    payload (warm pool), and reused by every task that resolves its
    handle — pinned by the pickle-count test in
    ``tests/test_runtime_executors.py``.
    """

    kind = "process"

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__(jobs)
        # id(value) -> (key, value) — the strong reference keeps id() valid
        # for the executor's lifetime, so re-broadcasting the same object
        # reuses the existing payload instead of pickling again.
        self._broadcast_keys: dict[int, tuple[str, object]] = {}
        self._broadcast_payloads: dict[str, bytes] = {}

    def _make_pool(self):
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_install_broadcasts,
            initargs=(dict(self._broadcast_payloads),),
        )

    def broadcast(self, value) -> BroadcastHandle:
        entry = self._broadcast_keys.get(id(value))
        if entry is not None and entry[1] is value:
            key = entry[0]
        else:
            key = f"broadcast-{os.getpid()}-{id(self)}-{len(self._broadcast_keys)}"
            self._broadcast_keys[id(value)] = (key, value)
            self._broadcast_payloads[key] = pickle.dumps(value)
        if self._pool is None:
            # The pool does not exist yet: the initializer will install the
            # payload in every worker, so the handle travels weightless.
            return BroadcastHandle(key)
        # Warm pool: workers may predate this broadcast, so the handle
        # carries the payload; each worker unpickles it at most once.
        return BroadcastHandle(key, self._broadcast_payloads[key])


#: Executor kinds accepted by :func:`resolve_executor` and the CLI.
EXECUTOR_KINDS: Sequence[str] = ("serial", "thread", "process")


def resolve_executor(
    jobs: Optional[int], kind: str = "thread"
) -> Optional[Executor]:
    """Map the user-facing ``jobs=N`` knob to an executor instance.

    ``None`` stays ``None`` (callers treat that as "keep the serial legacy
    path"); ``jobs <= 1`` or ``kind="serial"`` is the
    :class:`SerialExecutor` reference; otherwise a thread or process pool
    of the requested width.
    """
    if jobs is None:
        return None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if kind not in EXECUTOR_KINDS:
        raise ValueError(f"unknown executor kind {kind!r}; choose from {EXECUTOR_KINDS}")
    if jobs == 1 or kind == "serial":
        return SerialExecutor()
    if kind == "process":
        return ProcessExecutor(jobs)
    return ThreadExecutor(jobs)
