"""Pluggable executors behind one tiny, determinism-friendly interface.

The runtime never exposes completion order to its callers: work is
submitted, futures are collected, and results are merged in the order the
work was *submitted* (see :mod:`repro.runtime.sharding`).  An
:class:`Executor` therefore only needs ``submit`` — everything else
(``starmap``, context management) is shared plumbing.

Three implementations cover the repository's needs:

* :class:`SerialExecutor` — runs the work inline at ``submit`` time.  It is
  the executable reference every parallel result is compared against
  (``tests/test_runtime_equivalence.py`` pins thread/process == serial
  **bitwise**), and the degenerate case ``jobs=1`` resolves to.
* :class:`ThreadExecutor` — :class:`concurrent.futures.ThreadPoolExecutor`.
  The default for campaigns: NumPy kernels release the GIL, nothing needs
  to be picklable, and workers share the process (so e.g. the simulator's
  memoized phase tables are shared for free).
* :class:`ProcessExecutor` — :class:`concurrent.futures.ProcessPoolExecutor`.
  True parallelism for pure-Python hot loops (tree-surrogate refits, the
  scalar models); task functions and arguments must be picklable, and
  worker-side state mutations are discarded (see the per-worker
  evaluation-cache contract on :class:`repro.sim.simulator.Simulator`).

``resolve_executor`` maps the user-facing ``jobs=N`` knob
(:meth:`MetaDSE.explore`, ``python -m repro dse --jobs N``) to an executor
instance.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Optional, Sequence


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given: one per CPU core."""
    return os.cpu_count() or 1


class Executor:
    """Minimal executor interface: ``submit`` returning a future.

    Attributes
    ----------
    kind:
        Short name (``"serial"`` / ``"thread"`` / ``"process"``) used in
        reports and error messages.
    jobs:
        The parallelism width.  Sharding layers size their work splits from
        this (never from completion timing), so the *shape* of the
        computation is a pure function of ``(inputs, jobs)``.
    """

    kind: str = "abstract"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        raise NotImplementedError

    def starmap(self, fn: Callable, argument_tuples: Iterable[tuple]) -> list:
        """Apply *fn* to every argument tuple; results in submission order.

        All work is submitted before the first result is awaited, so the
        tasks run concurrently; the returned list order is the input order
        regardless of completion order.
        """
        futures = [self.submit(fn, *arguments) for arguments in argument_tuples]
        return [future.result() for future in futures]

    def shutdown(self, wait: bool = True) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """Run everything inline at ``submit`` time (the reference executor)."""

    kind = "serial"

    def __init__(self) -> None:
        super().__init__(jobs=1)

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except Exception as error:  # KeyboardInterrupt/SystemExit propagate
            future.set_exception(error)
        return future


class _PoolExecutor(Executor):
    """Shared plumbing for the two ``concurrent.futures`` wrappers."""

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__(jobs if jobs is not None else default_jobs())
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        if self._pool is None:
            # Lazy: constructing an executor costs nothing until used, so
            # APIs can build one speculatively (e.g. from a CLI flag).
            self._pool = self._make_pool()
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None


class ThreadExecutor(_PoolExecutor):
    """Thread-pool executor (shared memory, no pickling)."""

    kind = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.jobs)


class ProcessExecutor(_PoolExecutor):
    """Process-pool executor (true parallelism, picklable tasks only)."""

    kind = "process"

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.jobs)


#: Executor kinds accepted by :func:`resolve_executor` and the CLI.
EXECUTOR_KINDS: Sequence[str] = ("serial", "thread", "process")


def resolve_executor(
    jobs: Optional[int], kind: str = "thread"
) -> Optional[Executor]:
    """Map the user-facing ``jobs=N`` knob to an executor instance.

    ``None`` stays ``None`` (callers treat that as "keep the serial legacy
    path"); ``jobs <= 1`` or ``kind="serial"`` is the
    :class:`SerialExecutor` reference; otherwise a thread or process pool
    of the requested width.
    """
    if jobs is None:
        return None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if kind not in EXECUTOR_KINDS:
        raise ValueError(f"unknown executor kind {kind!r}; choose from {EXECUTOR_KINDS}")
    if jobs == 1 or kind == "serial":
        return SerialExecutor()
    if kind == "process":
        return ProcessExecutor(jobs)
    return ThreadExecutor(jobs)
