r"""The round-structured parallel campaign driver.

:meth:`repro.dse.engine.CampaignEngine.run_campaign` delegates here
whenever an ``executor`` or ``checkpoint`` is requested.  Each campaign
round is dispatched as a small DAG:

```
 screen:<w1>@round_r  screen:<w2>@round_r  ...  screen:<wN>@round_r
        \                  |                        /
         +------------- measure@round_r -----------+        (join node)
```

* every **screen job** (optionally) refits its workload's surrogate on the
  measurements accumulated so far, predicts the shared candidate pool and
  runs acquisition — all independent across workloads, so they run on the
  executor (module-level function, picklable for process pools);
* the **measure join** runs inline in the scheduling thread: it unions the
  per-workload selections in sorted index order and measures the union
  with one :meth:`~repro.sim.simulator.Simulator.run_sweep`, itself
  sharded over the same executor.

Determinism: the shared pool is proposed once per round in the parent (one
sampler-stream consumer, regardless of executor), screening is a pure
function of ``(surrogate, pool, accumulated measurements)``, the union is
sorted, and the sweep merges shards in fixed order — so thread/process
campaigns are **bitwise identical** to the
:class:`~repro.runtime.executors.SerialExecutor` reference, which in turn
reproduces the legacy single-round shared-pool path exactly
(``tests/test_runtime_equivalence.py``).

Rank-stable generators (``NSGA2Evolve`` and ``RandomPool``/``FocusedPool``
constructed with ``seed=``, and :class:`~repro.dse.portfolio.
StrategyPortfolio` over such arms) run a second mode, **per-workload
pools**: each screen job *proposes its own workload's pool inside the
worker* — drawing from keyed per-``(workload, round)`` RNG streams that
are a pure function of the generator's seed, so there is no shared
mutable stream sharding could reorder — and the measure join unions the
selected *configurations* (deduplicated in fixed workload order) before
the one sweep.  This is what admits surrogate-dependent strategies
(NSGA-II evolution needs the round's surrogate, which lives in the screen
job) to the parallel path; only surrogate-dependent generators with a
shared mutable stream (``NSGA2Evolve`` seeded with an existing numpy
``Generator``) remain rejected.  See ``docs/runtime.md`` and
``docs/portfolio.md``.

Resume: with a ``checkpoint`` path, every completed round is persisted
(:mod:`repro.runtime.checkpoint`); a restarted campaign replays only the
cheap sampling steps of completed rounds (keeping RNG streams aligned),
restores their measurements from disk, and continues with the first
unfinished round.  Every restored shared-pool round is cross-checked
against the replay — the stored union configurations must re-derive from
the replayed pool (and the initial samples must match outright), so an
engine rebuilt with the wrong seed raises :class:`CheckpointMismatchError`
instead of silently returning another campaign's results.  The *final*
round, when restored, additionally re-runs its (simulation-free)
screening step so ``predicted`` is populated and the stored selections
are verified — a fully resumed campaign is indistinguishable from an
uninterrupted one.  Per-workload-pool rounds have no parent-side stream
to advance: their generator seeds live in the campaign fingerprint (via
``fingerprint()``), strategy-portfolio campaigns additionally persist the
bandit-selected arm per workload (``RoundRecord.arms``) and a resume
replays the bandit from the restored quality histories and cross-checks
its selections, and the final restored round re-proposes and re-screens
exactly like the shared-pool mode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

from repro import obs
from repro.dse.acquisition import AcquisitionContext, ParetoRankAcquisition
from repro.runtime.checkpoint import (
    CampaignCheckpoint,
    CheckpointMismatchError,
    RoundRecord,
    campaign_fingerprint,
)
from repro.runtime.dag import Job, run_jobs
from repro.runtime.executors import Executor, SerialExecutor

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.dse.engine import CampaignEngine, CampaignResult


def _screen_workload(
    surrogate,
    features: np.ndarray,
    known_features: Optional[np.ndarray],
    known_targets: Optional[np.ndarray],
    objectives,
    acquisition,
    budget: int,
    refit: bool,
    screen_tile: Optional[int] = None,
) -> tuple[list[int], np.ndarray]:
    """One workload's refit/predict/select step (runs on the executor).

    Module-level so process pools can pickle it.  With ``refit`` the fit
    happens on the *worker's* copy of the surrogate under a process
    executor — that is sound because every round refits from scratch on
    the full accumulated measurement set, so no fitted state needs to
    survive the round.  ``screen_tile`` streams the pool prediction in
    blocks (bitwise identical to the unblocked screen, see
    :func:`repro.dse.engine.screen_predict`).
    """
    from repro.dse.engine import screen_predict

    if refit:
        with obs.span("campaign.refit"):
            surrogate.fit(known_features, known_targets)
    with obs.span("campaign.screen", candidates=len(features)):
        predicted = screen_predict(surrogate, features, screen_tile)
    predicted_min = objectives.to_minimization(predicted)
    context = AcquisitionContext(
        features=features,
        known_features=known_features,
        surrogate=surrogate,
        objectives=objectives,
    )
    with obs.span("campaign.select", budget=budget):
        selected = acquisition.select(predicted_min, budget, context)
    return [int(i) for i in selected], predicted


def _propose_screen_workload(
    proposer,
    context,
    surrogate,
    workload: str,
    round_index: int,
    known_features: Optional[np.ndarray],
    known_targets: Optional[np.ndarray],
    objectives,
    acquisition,
    budget: int,
    refit: bool,
    screen_tile: Optional[int] = None,
) -> tuple[list, np.ndarray, int]:
    """One workload's refit/propose/screen/select step (per-workload pools).

    The per-workload-pool twin of :func:`_screen_workload`: the pool is
    proposed *inside the job* because rank-stable proposers draw it from a
    keyed pure stream (no shared state) and surrogate-dependent ones need
    the freshly refit surrogate.  Refit precedes proposal, mirroring
    :meth:`repro.dse.engine.CampaignEngine.run`.  *proposer* is the
    generator itself — or, for a strategy portfolio, the bandit-selected
    arm (the parent resolves :meth:`~repro.dse.engine.CandidateGenerator.
    proposer_for` before submitting, so workers never touch bandit state).
    Returns the selected configurations, the full-pool predictions and the
    pool size.
    """
    from repro.dse.engine import screen_predict

    if refit:
        with obs.span("campaign.refit", workload=workload, round=round_index):
            surrogate.fit(known_features, known_targets)
    with obs.span("campaign.propose", workload=workload, round=round_index):
        candidates = proposer.propose_for(context, surrogate, workload, round_index)
    features = context.encoder.encode_batch(candidates)
    with obs.span(
        "campaign.screen",
        workload=workload,
        round=round_index,
        candidates=len(candidates),
    ):
        predicted = screen_predict(surrogate, features, screen_tile)
    predicted_min = objectives.to_minimization(predicted)
    acquisition_context = AcquisitionContext(
        features=features,
        known_features=known_features,
        surrogate=surrogate,
        objectives=objectives,
    )
    with obs.span("campaign.select", workload=workload, budget=budget):
        selected = acquisition.select(predicted_min, budget, acquisition_context)
    return [candidates[int(i)] for i in selected], predicted, len(candidates)


def _describe_generator(generator) -> str:
    # Generators with proposal-shaping knobs beyond ``size`` (e.g.
    # FocusedPool's keep_fraction/coarse_levels) publish them through
    # ``fingerprint()`` so resuming a checkpoint with different knobs is
    # rejected instead of silently diverging.
    fingerprint = getattr(generator, "fingerprint", None)
    if callable(fingerprint):
        return str(fingerprint())
    size = getattr(generator, "size", None)
    suffix = f"(size={size})" if size is not None else ""
    return f"{type(generator).__name__}{suffix}"


def run_campaign_runtime(
    engine: "CampaignEngine",
    workloads: Sequence[str],
    surrogates,
    *,
    generator=None,
    acquisition=None,
    candidate_pool: int = 1000,
    simulation_budget: int = 20,
    rounds: int = 1,
    initial_samples: int = 0,
    refit: bool = False,
    executor: Optional[Executor] = None,
    checkpoint=None,
) -> "CampaignResult":
    """Run a cross-workload campaign through the parallel runtime.

    Same semantics per round as the engine's shared-pool fast path,
    generalised to multiple rounds (every round screens a fresh shared
    pool against all measurements so far and measures the selection
    union on all workloads), dispatched as DAG jobs on *executor* and
    checkpointed per round when *checkpoint* is given.

    With a persistent measurement store attached to the engine's
    simulator (``Simulator(store=...)``), every measure join reads
    through the store — rounds whose union was measured by an earlier
    campaign (or a killed run of this one) are served from disk without
    simulation, and the store is refreshed at each measure join so
    concurrent campaigns over the same store amortise each other
    mid-run.  Store hits are bitwise-identical to fresh simulation, so a
    warm campaign equals a cold one bitwise (the warm-start equivalence
    the store tests pin).
    """
    from repro.dse.engine import (
        CampaignResult,
        QualityTracker,
        RandomPool,
        WorkloadCampaignResult,
    )

    workloads = list(workloads)
    if not workloads:
        raise ValueError("run_campaign needs at least one workload")
    if simulation_budget < 1:
        raise ValueError("simulation_budget must be >= 1")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if initial_samples < 0:
        raise ValueError("initial_samples must be >= 0")
    if refit and initial_samples < 2:
        raise ValueError("refit=True needs initial_samples >= 2 to fit on")

    surrogate_for: Callable = (
        surrogates if callable(surrogates) else surrogates.__getitem__
    )
    executor = executor if executor is not None else SerialExecutor()
    generator = generator if generator is not None else RandomPool(candidate_pool)
    # Mode selection: rank-stable generators propose per workload inside the
    # screen jobs (keyed pure streams); everything else screens one shared
    # pool proposed in the parent.  Surrogate-dependent generators without
    # rank-stability have neither a shared pool to replay nor pure streams
    # to shard, so they cannot run (or resume) deterministically here.
    per_workload_pools = bool(getattr(generator, "rank_stable", False))
    if generator.surrogate_dependent and not per_workload_pools:
        raise ValueError(
            f"the parallel campaign runtime needs a surrogate-independent "
            f"or rank-stable generator; {type(generator).__name__} proposes "
            f"per workload from a shared mutable RNG stream — seed it with "
            f"an int (keyed per-(workload, round) streams) or use the "
            f"serial run_campaign path (executor=None, checkpoint=None)"
        )
    acquisition = acquisition if acquisition is not None else ParetoRankAcquisition()
    noise_std = getattr(engine.simulator, "noise_std", 0.0)
    if noise_std > 0 and (checkpoint is not None or executor.jobs > 1):
        # A checkpointed resume restores completed rounds without re-running
        # their sweeps, so the noise RNG stream would sit at the wrong
        # position for the first live round — the silent divergence the
        # resume guards exist to prevent.  (Parallel sweeps reject noise
        # anyway; raising here fails fast instead of mid-campaign.)
        raise ValueError(
            "checkpointed or parallel campaigns require a noise-free "
            "simulator (noise_std == 0): resume restores measurements "
            "without replaying the measurement-noise stream"
        )

    objectives = engine.objectives
    surrogate_by_workload = {workload: surrogate_for(workload) for workload in workloads}
    if refit:
        for workload, surrogate in surrogate_by_workload.items():
            if not surrogate.supports_fit:
                raise ValueError(
                    f"refit=True needs refittable surrogates, "
                    f"{type(surrogate).__name__} (workload {workload!r}) is not"
                )

    ckpt: Optional[CampaignCheckpoint] = None
    completed: dict[int, RoundRecord] = {}
    if checkpoint is not None:
        fingerprint = campaign_fingerprint(
            workloads=workloads,
            objective_names=objectives.names,
            maximize=objectives.maximize,
            simulation_budget=simulation_budget,
            rounds=rounds,
            initial_samples=initial_samples,
            refit=refit,
            generator=_describe_generator(generator),
            acquisition=type(acquisition).__name__,
            surrogates={
                workload: type(surrogate).__name__
                for workload, surrogate in surrogate_by_workload.items()
            },
        )
        ckpt = CampaignCheckpoint.resume_or_start(checkpoint, fingerprint)
        completed = ckpt.completed()
        # Completed rounds must be the contiguous prefix the driver writes;
        # anything else (hand-edited file, mixed campaigns) cannot be
        # resumed coherently.
        expected_prefix = ([-1] if initial_samples else []) + list(range(rounds))
        stored_order = [record.round_index for record in ckpt.rounds]
        if stored_order != expected_prefix[: len(stored_order)]:
            raise CheckpointMismatchError(
                f"{ckpt.path}: checkpointed rounds {stored_order} are not a "
                f"contiguous prefix of {expected_prefix}"
            )

    # -- accumulated campaign state -----------------------------------------
    simulated: list = []
    measured = {
        workload: np.empty((0, objectives.num_objectives), dtype=np.float64)
        for workload in workloads
    }
    trackers = {workload: QualityTracker(objectives) for workload in workloads}
    last_selected: dict[str, list[int]] = {workload: [] for workload in workloads}
    last_predicted: dict[str, Optional[np.ndarray]] = {
        workload: None for workload in workloads
    }
    candidates_screened = 0
    screened_by_workload = {workload: 0 for workload in workloads}
    arm_for = getattr(generator, "arm_for", None)

    def measure_union(union_configs: list) -> dict[str, np.ndarray]:
        with obs.span("campaign.measure", configs=len(union_configs)):
            obs.add_counter("campaign.union_configs", len(union_configs))
            # Pick up store segments appended by concurrent campaigns since
            # the last join (no-op without a store).
            refresh_store = getattr(engine.simulator, "refresh_store", None)
            if refresh_store is not None:
                refresh_store()
            sweep = engine.simulator.run_sweep(
                union_configs, workloads, executor=executor
            )
        return {
            workload: np.stack(
                [sweep[workload].objective(name) for name in objectives.names], axis=1
            )
            for workload in workloads
        }

    def absorb(record: RoundRecord) -> None:
        """Fold one (fresh or restored) round into the campaign state."""
        offset = len(simulated)
        simulated.extend(record.union_configs)
        for workload in workloads:
            measured[workload] = np.concatenate(
                [measured[workload], record.measured[workload]], axis=0
            )
            if record.round_index >= 0:
                last_selected[workload] = [
                    offset + int(position)
                    for position in record.selections[workload]
                ]
                entry = trackers[workload].record(
                    record.round_index,
                    objectives.to_minimization(measured[workload]),
                    len(simulated),
                )
                if record.arms:
                    entry.extras["arm"] = record.arms[workload]
                quality = {
                    "workload": workload,
                    "round": record.round_index,
                    "hypervolume": entry.hypervolume,
                    "pareto": entry.pareto_size,
                    "simulations": entry.simulations_total,
                }
                if record.arms:
                    quality["arm"] = record.arms[workload]
                obs.event("campaign.quality", **quality)
        if record.round_index >= 0:
            # Parent-side, in round order — fresh and restored rounds alike,
            # so a resumed bandit replays into the same state bitwise.
            for workload in workloads:
                generator.observe_round(
                    workload, record.round_index, trackers[workload]
                )

    # -- initial samples (round -1): measured on every workload ---------------
    if initial_samples:
        with obs.span("campaign.initial", samples=initial_samples):
            initial = engine.sampler.sample(initial_samples)
            record = completed.get(-1)
            if record is not None:
                if record.union_configs != initial:
                    raise CheckpointMismatchError(
                        "resumed initial samples differ from the checkpoint — "
                        "the engine must be reconstructed with the same seed "
                        "and sampler to resume a campaign"
                    )
                record = RoundRecord(-1, initial, record.selections, record.measured)
            else:
                record = RoundRecord(
                    round_index=-1,
                    union_configs=initial,
                    selections={workload: [] for workload in workloads},
                    measured=measure_union(initial),
                )
                if ckpt is not None:
                    ckpt.record_round(record)
            absorb(record)

    # -- rounds (per-workload-pool mode) ----------------------------------------
    from repro.dse.engine import ProposalContext

    proposal_context = ProposalContext(
        space=engine.space, objectives=objectives, encoder=engine.encoder
    )

    def config_key(config) -> tuple:
        return tuple(sorted(config.items()))

    def make_propose_jobs(round_index: int) -> list[Job]:
        known_features = (
            engine.encoder.encode_batch(simulated) if simulated else None
        )
        return [
            Job(
                f"screen:{workload}@round{round_index}",
                _propose_screen_workload,
                args=(
                    generator.proposer_for(workload, round_index),
                    proposal_context,
                    surrogate_by_workload[workload],
                    workload,
                    round_index,
                    known_features,
                    measured[workload] if refit else None,
                    objectives,
                    acquisition,
                    simulation_budget,
                    refit,
                    engine.screen_tile,
                ),
            )
            for workload in workloads
        ]

    def union_of(screen_jobs: list[Job], screen_results: dict):
        """Dedup-union the per-workload picks in fixed workload order.

        Workload order (not arrival order) keys the union, so the result is
        independent of the executor and of which screen job finished first.
        """
        union_configs: list = []
        position: dict[tuple, int] = {}
        selections: dict[str, list[int]] = {}
        pool_sizes: dict[str, int] = {}
        predicted: dict[str, np.ndarray] = {}
        for workload, job in zip(workloads, screen_jobs):
            picks, job_predicted, pool_size = screen_results[job.name]
            offsets = []
            for config in picks:
                key = config_key(config)
                if key not in position:
                    position[key] = len(union_configs)
                    union_configs.append(config)
                offsets.append(position[key])
            selections[workload] = offsets
            pool_sizes[workload] = int(pool_size)
            predicted[workload] = job_predicted
        return union_configs, selections, pool_sizes, predicted

    # -- rounds (shared-pool mode) ----------------------------------------------
    def make_screen_jobs(round_index: int, features: np.ndarray) -> list[Job]:
        known_features = (
            engine.encoder.encode_batch(simulated) if simulated else None
        )
        return [
            Job(
                f"screen:{workload}@round{round_index}",
                _screen_workload,
                args=(
                    surrogate_by_workload[workload],
                    features,
                    known_features,
                    measured[workload] if refit else None,
                    objectives,
                    acquisition,
                    simulation_budget,
                    refit,
                    engine.screen_tile,
                ),
            )
            for workload in workloads
        ]

    for round_index in range(rounds):
        with obs.span("campaign.round", round=round_index):
            obs.add_counter("campaign.rounds", 1)
            if per_workload_pools:
                # Bandit selections are resolved parent-side from the state
                # accumulated over rounds < round_index (arm_for is pure), so
                # workers never touch — and cannot race on — bandit state.
                arms_map = (
                    {
                        workload: arm_for(workload, round_index)
                        for workload in workloads
                    }
                    if arm_for is not None
                    else {}
                )
                record = completed.get(round_index)
                if record is not None:
                    if arm_for is not None and record.arms != arms_map:
                        raise CheckpointMismatchError(
                            f"replayed bandit arms for round {round_index} "
                            f"({arms_map}) do not match the checkpoint "
                            f"({record.arms}) — the campaign was resumed with a "
                            f"different portfolio or quality signal"
                        )
                    for workload in workloads:
                        screened_by_workload[workload] += record.pool_sizes.get(
                            workload, 0
                        )
                    if round_index == rounds - 1:
                        # Final round restored: re-propose and re-screen
                        # (simulation-free — proposals come from keyed pure
                        # streams) so `predicted` is populated and the stored
                        # union and selections verify.
                        screen_jobs = make_propose_jobs(round_index)
                        results = run_jobs(screen_jobs, executor)
                        union_configs, selections, _, predicted = union_of(
                            screen_jobs, results
                        )
                        if (
                            union_configs != record.union_configs
                            or selections != record.selections
                        ):
                            raise CheckpointMismatchError(
                                f"re-proposed pools for round {round_index} do "
                                f"not reproduce the checkpointed union — the "
                                f"campaign was resumed with different generator "
                                f"seeds, surrogates or acquisition settings"
                            )
                        for workload in workloads:
                            last_predicted[workload] = predicted[workload]
                    absorb(record)
                    continue

                screen_jobs = make_propose_jobs(round_index)

                def propose_measure_join(screen_results: dict):
                    union_configs, selections, pool_sizes, predicted = union_of(
                        screen_jobs, screen_results
                    )
                    return (
                        union_configs,
                        selections,
                        pool_sizes,
                        predicted,
                        measure_union(union_configs),
                    )

                measure_job = Job(
                    f"measure@round{round_index}",
                    propose_measure_join,
                    deps=screen_jobs,
                    inline=True,  # it fans its own sweep shards out to the executor
                    pass_results=True,
                )
                results = run_jobs([measure_job], executor)
                union_configs, selections, pool_sizes, predicted, union_rows = (
                    results[measure_job.name]
                )
                for workload in workloads:
                    last_predicted[workload] = predicted[workload]
                    screened_by_workload[workload] += pool_sizes[workload]
                record = RoundRecord(
                    round_index=round_index,
                    union_configs=union_configs,
                    selections=selections,
                    measured=union_rows,
                    arms=dict(arms_map),
                    pool_sizes=pool_sizes,
                )
                if ckpt is not None:
                    ckpt.record_round(record)
                absorb(record)
                continue

            # Propose even for restored rounds: the generator's RNG stream must
            # advance exactly as in an uninterrupted run.
            candidates = generator.propose(engine, None, round_index)
            candidates_screened += len(candidates)

            record = completed.get(round_index)
            if record is not None:
                replayed_union = [
                    candidates[index] for index in record.union_pool_indices
                ]
                if replayed_union != record.union_configs:
                    raise CheckpointMismatchError(
                        f"replayed candidate pool for round {round_index} does "
                        f"not reproduce the checkpointed union — the engine must "
                        f"be reconstructed with the same seed and sampler to "
                        f"resume a campaign"
                    )
                if round_index == rounds - 1:
                    # The campaign ends on a restored round: re-run its
                    # (simulation-free) screening so `predicted` is populated
                    # and the stored selections verify — a fully resumed
                    # campaign result is indistinguishable from an
                    # uninterrupted one.
                    screen_jobs = make_screen_jobs(
                        round_index, engine.encoder.encode_batch(candidates)
                    )
                    results = run_jobs(screen_jobs, executor)
                    position = {
                        index: offset
                        for offset, index in enumerate(record.union_pool_indices)
                    }
                    for workload, job in zip(workloads, screen_jobs):
                        selected, predicted = results[job.name]
                        if [
                            position.get(index) for index in selected
                        ] != record.selections[workload]:
                            raise CheckpointMismatchError(
                                f"re-screened selections for {workload!r} (round "
                                f"{round_index}) do not match the checkpoint — "
                                f"the campaign was resumed with different "
                                f"surrogates or acquisition settings"
                            )
                        last_predicted[workload] = predicted
                absorb(record)
                continue

            screen_jobs = make_screen_jobs(
                round_index, engine.encoder.encode_batch(candidates)
            )

            def measure_join(screen_results: dict) -> tuple[list[int], dict[str, np.ndarray]]:
                union = sorted(
                    {
                        int(index)
                        for selected, _ in screen_results.values()
                        for index in selected
                    }
                )
                return union, measure_union([candidates[index] for index in union])

            measure_job = Job(
                f"measure@round{round_index}",
                measure_join,
                deps=screen_jobs,
                inline=True,  # it fans its own sweep shards out to the executor
                pass_results=True,
            )
            results = run_jobs([measure_job], executor)

            union, union_rows = results[measure_job.name]
            position = {index: offset for offset, index in enumerate(union)}
            selections = {}
            for workload, job in zip(workloads, screen_jobs):
                selected, predicted = results[job.name]
                selections[workload] = [position[index] for index in selected]
                last_predicted[workload] = predicted
            record = RoundRecord(
                round_index=round_index,
                union_configs=[candidates[index] for index in union],
                selections=selections,
                measured=union_rows,
                union_pool_indices=union,
            )
            if ckpt is not None:
                ckpt.record_round(record)
            absorb(record)

    # -- assemble ---------------------------------------------------------------
    if per_workload_pools:
        # No shared pool: each workload screened its own pools, and the
        # campaign-level figure is their total.
        candidates_screened = sum(screened_by_workload.values())
    per_workload = {}
    for workload in workloads:
        tracker = trackers[workload]
        per_workload[workload] = WorkloadCampaignResult(
            workload=workload,
            objectives=objectives,
            simulated_configs=list(simulated),
            measured_objectives=measured[workload],
            pareto_indices=tracker.last_front_indices,
            simulations_used=len(simulated),
            candidates_screened=(
                screened_by_workload[workload]
                if per_workload_pools
                else candidates_screened
            ),
            rounds=tracker.rounds,
            selected_indices=last_selected[workload],
            predicted=last_predicted[workload],
        )
    return CampaignResult(
        per_workload=per_workload,
        objectives=objectives,
        candidates_screened=candidates_screened,
        total_simulations=len(simulated) * len(workloads),
    )
