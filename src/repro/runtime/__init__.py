"""The parallel campaign runtime.

Every fan-out in the reproduction — configurations x workloads simulation
sweeps, per-workload screening in a cross-workload campaign, episode
dataset generation — shares the same shape: independent units of work whose
results must be merged in a **fixed order** so the parallel output is
bitwise identical to the serial one.  This package owns that machinery
once:

* :mod:`repro.runtime.dag` — a small stdlib-only DAG job scheduler
  (:class:`~repro.runtime.dag.Job` with dependencies, cycle detection
  before execution, ancestor pruning) in the spirit of ``dawgz``;
* :mod:`repro.runtime.executors` — pluggable executors behind one tiny
  interface (:class:`~repro.runtime.executors.SerialExecutor`,
  :class:`~repro.runtime.executors.ThreadExecutor`,
  :class:`~repro.runtime.executors.ProcessExecutor` over
  :mod:`concurrent.futures`);
* :mod:`repro.runtime.sharding` — deterministic work splitting
  (:func:`~repro.runtime.sharding.split_evenly`,
  :func:`~repro.runtime.sharding.plan_sweep_shards`) whose merge order is a
  pure function of the inputs, never of scheduling;
* :mod:`repro.runtime.checkpoint` — the per-round campaign checkpoint
  (:class:`~repro.runtime.checkpoint.CampaignCheckpoint`) behind resumable
  cross-workload campaigns;
* :mod:`repro.runtime.campaign` — the round-structured campaign driver
  :meth:`~repro.dse.engine.CampaignEngine.run_campaign` delegates to when
  an executor or checkpoint is requested (imported lazily to avoid a
  cycle with :mod:`repro.dse.engine`).

The determinism contract, executor model and checkpoint format are
documented in ``docs/runtime.md``.
"""

from repro.runtime.checkpoint import CampaignCheckpoint, CheckpointMismatchError
from repro.runtime.dag import (
    CyclicDependencyError,
    Job,
    JobFailedError,
    collect_jobs,
    find_cycle,
    prune,
    run_jobs,
)
from repro.runtime.executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.runtime.sharding import plan_sweep_shards, split_evenly

__all__ = [
    "Job",
    "JobFailedError",
    "CyclicDependencyError",
    "collect_jobs",
    "find_cycle",
    "prune",
    "run_jobs",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "split_evenly",
    "plan_sweep_shards",
    "CampaignCheckpoint",
    "CheckpointMismatchError",
]
