"""A small DAG job scheduler (dawgz-style, stdlib-only).

A :class:`Job` is a named callable with dependencies on other jobs.
:func:`run_jobs` validates the graph — duplicate names and cycles are
rejected **before** anything executes — then runs it on an
:class:`~repro.runtime.executors.Executor`: jobs whose dependencies are all
done are submitted, completions unlock their children, and the results are
returned keyed by job name (so nothing observable depends on completion
order).

Two affordances matter for the campaign runtime:

* **inline join nodes** — a job created with ``inline=True`` runs in the
  scheduling thread instead of on the executor.  The campaign's
  union-measure step is such a join: it fans out *its own* sharded work to
  the same executor, and running it on a worker would deadlock a
  single-worker pool (the join occupies the only worker while waiting for
  the shards it submitted).
* **failure attribution** — a job that raises aborts the run with a
  :class:`JobFailedError` naming the failing job (``.job_name``) and
  chaining the original exception; jobs not yet submitted are skipped.

:func:`prune` keeps only the ancestors of a set of target jobs, mirroring
``dawgz``'s backward pruning: schedule the jobs a result actually needs.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, wait
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro import obs
from repro.runtime.executors import Executor, SerialExecutor


class CyclicDependencyError(RuntimeError):
    """The dependency graph contains a cycle (reported as a name path)."""


class JobFailedError(RuntimeError):
    """A job raised; carries the failing job's name, chains the cause."""

    def __init__(self, job_name: str, cause: BaseException) -> None:
        super().__init__(f"job {job_name!r} failed: {cause}")
        self.job_name = job_name


class Job:
    """A named unit of work with dependencies.

    Parameters
    ----------
    name:
        Unique name within one :func:`run_jobs` call; failure messages and
        the results mapping are keyed by it.
    fn:
        The callable to run.  With ``pass_results=True`` it receives the
        dependency results (``{dependency_name: result}``) as its first
        positional argument, before *args*.
    args, kwargs:
        Pre-bound call arguments.  For a
        :class:`~repro.runtime.executors.ProcessExecutor`, *fn* and all
        arguments must be picklable (use module-level functions, not
        closures).
    deps:
        Jobs that must complete before this one starts.
    inline:
        Run in the scheduling thread instead of on the executor (for join
        nodes that submit their own work to the same executor).
    """

    def __init__(
        self,
        name: str,
        fn: Callable[..., Any],
        *,
        args: Sequence = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        deps: Sequence["Job"] = (),
        inline: bool = False,
        pass_results: bool = False,
    ) -> None:
        self.name = str(name)
        self.fn = fn
        self.args = tuple(args)
        self.kwargs = dict(kwargs) if kwargs else {}
        self.deps: tuple[Job, ...] = tuple(deps)
        self.inline = inline
        self.pass_results = pass_results

    def after(self, *deps: "Job") -> "Job":
        """Append dependencies (chainable)."""
        self.deps = self.deps + tuple(deps)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job({self.name!r}, deps={[d.name for d in self.deps]})"


def collect_jobs(jobs: Iterable[Job]) -> list[Job]:
    """All given jobs plus their transitive dependencies, in a stable order.

    The order is first-seen depth-first from the given jobs — deterministic
    for a given call, which keeps submission order (and therefore any
    executor queueing) reproducible.
    """
    seen: dict[int, Job] = {}
    ordered: list[Job] = []

    def visit(job: Job) -> None:
        if id(job) in seen:
            return
        seen[id(job)] = job
        for dep in job.deps:
            visit(dep)
        ordered.append(job)

    for job in jobs:
        visit(job)
    return ordered


def find_cycle(jobs: Iterable[Job]) -> Optional[list[Job]]:
    """Return one dependency cycle as a job path, or ``None``."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[int, int] = {}
    path: list[Job] = []

    def visit(job: Job) -> Optional[list[Job]]:
        color[id(job)] = GREY
        path.append(job)
        for dep in job.deps:
            state = color.get(id(dep), WHITE)
            if state == GREY:
                start = next(i for i, j in enumerate(path) if j is dep)
                return path[start:] + [dep]
            if state == WHITE:
                cycle = visit(dep)
                if cycle is not None:
                    return cycle
        path.pop()
        color[id(job)] = BLACK
        return None

    for job in collect_jobs(jobs):
        if color.get(id(job), WHITE) == WHITE:
            cycle = visit(job)
            if cycle is not None:
                return cycle
    return None


def prune(targets: Iterable[Job]) -> list[Job]:
    """Restrict a graph to the ancestors of *targets* (targets included)."""
    return collect_jobs(targets)


def _invoke(job: Job, dependency_results: dict[str, Any]):
    if job.pass_results:
        return job.fn(dependency_results, *job.args, **job.kwargs)
    return job.fn(*job.args, **job.kwargs)


def _invoke_traced(job: Job, dependency_results: dict[str, Any], submitted: float):
    """Worker-side wrapper used when tracing is active.

    Runs the job under an :mod:`repro.obs` capture buffer and returns
    ``(result, telemetry, submitted, started, ended)`` so the scheduling
    thread can emit the job span (with its queue/run durations) and splice
    the worker-side spans under it.  Module-level for pickling.
    """
    started = time.time()
    result, telemetry = obs.run_captured(_invoke, job, dependency_results)
    return result, telemetry, submitted, started, time.time()


def _finish_traced(job: Job, wrapped) -> Any:
    """Scheduler-side join of a traced job: emit its span, return the result."""
    result, telemetry, submitted, started, ended = wrapped
    span_id = obs.record_span(
        "dag.job",
        started,
        ended,
        job=job.name,
        queue_s=started - submitted,
    )
    obs.splice(telemetry, parent=span_id)
    obs.add_counter("dag.jobs", 1)
    obs.add_counter("dag.queue_s", started - submitted)
    obs.add_counter("dag.run_s", ended - started)
    return result


def run_jobs(
    jobs: Iterable[Job], executor: Optional[Executor] = None
) -> dict[str, Any]:
    """Execute a job graph; return ``{job name: result}``.

    The graph (the given jobs plus transitive dependencies) is validated
    first: duplicate names and cyclic dependencies raise before any job
    runs.  Ready jobs are submitted to *executor* (inline jobs run in the
    scheduling thread); a failing job aborts the run with a
    :class:`JobFailedError` naming it.
    """
    executor = executor if executor is not None else SerialExecutor()
    trace = obs.trace_active()
    graph = collect_jobs(jobs)
    names = [job.name for job in graph]
    if len(set(names)) != len(names):
        duplicates = sorted({name for name in names if names.count(name) > 1})
        raise ValueError(f"duplicate job names: {duplicates}")
    cycle = find_cycle(graph)
    if cycle is not None:
        raise CyclicDependencyError(
            "cyclic dependency: " + " -> ".join(job.name for job in cycle)
        )

    results: dict[str, Any] = {}
    blocked = {job.name: {dep.name for dep in job.deps} for job in graph}
    by_name = {job.name: job for job in graph}
    pending: dict[Any, Job] = {}
    #: Submission sequence per future — completion waves are processed in
    #: this order so multi-failure attribution is deterministic (``wait``
    #: returns an unordered set).
    submitted_at: dict[Any, int] = {}

    def dependency_results(job: Job) -> dict[str, Any]:
        return {dep.name: results[dep.name] for dep in job.deps}

    def drain_completions(
        done, inline_failure: Optional[tuple[Job, BaseException]] = None
    ) -> list[tuple[Job, Any]]:
        """Process a completion wave; on failure, attribute deterministically.

        ``wait`` hands back an unordered set, and with racing failures the
        first wave may not even contain the first-submitted one — so once
        any failure is seen (from a worker or from an inline job), the
        remaining in-flight futures are drained (they are already running;
        they cannot be cancelled anyway) and the failure with the earliest
        submission index is raised — an inline failure counts as submitted
        after every worker job in flight, since it ran after their
        submission.  Error attribution is therefore a function of the
        graph, not of thread timing.
        """
        completions: list[tuple[Job, Any]] = []
        failures: list[tuple[float, Job, BaseException]] = []
        if inline_failure is not None:
            failures.append((float("inf"),) + tuple(inline_failure))

        def process(wave) -> None:
            for future in sorted(wave, key=submitted_at.__getitem__):
                job = pending.pop(future)
                error = future.exception()
                if error is not None:
                    failures.append((submitted_at[future], job, error))
                elif trace:
                    completions.append((job, _finish_traced(job, future.result())))
                else:
                    completions.append((job, future.result()))

        process(done)
        if failures and pending:
            process(wait(pending)[0])
        if failures:
            _, job, error = min(failures, key=lambda entry: entry[0])
            raise JobFailedError(job.name, error) from error
        return completions

    while blocked or pending:
        ready = [name for name, waiting in blocked.items() if not waiting]
        # Submit executor-bound jobs first so they overlap with any inline
        # join node that is ready in the same wave.
        inline_ready: list[Job] = []
        for name in ready:
            del blocked[name]
            job = by_name[name]
            if job.inline:
                inline_ready.append(job)
            elif trace:
                future = executor.submit(
                    _invoke_traced, job, dependency_results(job), time.time()
                )
                pending[future] = job
                submitted_at[future] = len(submitted_at)
            else:
                future = executor.submit(_invoke, job, dependency_results(job))
                pending[future] = job
                submitted_at[future] = len(submitted_at)

        completed: list[tuple[Job, Any]] = []
        for job in inline_ready:
            try:
                if trace:
                    with obs.span("dag.job", job=job.name, inline=True):
                        value = _invoke(job, dependency_results(job))
                    obs.add_counter("dag.inline_jobs", 1)
                else:
                    value = _invoke(job, dependency_results(job))
                completed.append((job, value))
            except Exception as error:  # KeyboardInterrupt/SystemExit propagate
                drain_completions((), inline_failure=(job, error))
        if not completed:
            if not pending:
                break
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            completed.extend(drain_completions(done))

        for job, result in completed:
            results[job.name] = result
            for waiting in blocked.values():
                waiting.discard(job.name)

    return results
