"""Deterministic work splitting for parallel evaluation.

The sharding contract that makes parallel results bitwise-identical to
serial ones has two halves:

1. the **split** is a pure function of ``(problem size, executor.jobs)`` —
   contiguous index ranges, never influenced by scheduling or completion
   timing;
2. the **merge** happens in shard-index order after all shards join, so
   assembled arrays (and any caches fed from them) are ordered exactly as
   the serial path would have produced them.

Combined with the evaluation kernels being elementwise per configuration
(see ``docs/runtime.md`` for the exact argument), evaluating a contiguous
slice yields the same bits as slicing the full evaluation —
``tests/test_runtime_equivalence.py`` pins this for every executor.
"""

from __future__ import annotations


def split_evenly(count: int, parts: int) -> list[range]:
    """Split ``range(count)`` into at most *parts* contiguous ranges.

    Sizes differ by at most one (the first ``count % parts`` shards get the
    extra element); empty shards are dropped, so fewer than *parts* ranges
    come back when ``count < parts``.  Concatenating the ranges in order
    reproduces ``range(count)`` exactly.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    parts = min(parts, count)
    if parts == 0:
        return []
    base, extra = divmod(count, parts)
    shards: list[range] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        shards.append(range(start, start + size))
        start += size
    return shards


def plan_sweep_shards(num_configs: int, num_workloads: int, jobs: int) -> list[range]:
    """Per-workload configuration shards for a ``(configs x workloads)`` sweep.

    Every workload gets the *same* list of contiguous configuration ranges
    (so the per-workload merge is identical), sized so the total task count
    ``num_workloads * len(ranges)`` is at least *jobs* — enough tasks to
    occupy every worker even when workloads are fewer than workers, without
    fragmenting the NumPy batches more than necessary.
    """
    if num_workloads < 1:
        raise ValueError(f"num_workloads must be >= 1, got {num_workloads}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    shards_per_workload = -(-jobs // num_workloads)  # ceil division
    return split_evenly(num_configs, shards_per_workload)
