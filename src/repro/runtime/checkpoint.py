"""Per-round campaign checkpoints (the resumable-campaign substrate).

A multi-round cross-workload campaign spends almost all of its time in
simulation and surrogate refits; the checkpoint records exactly what that
money bought — per completed round: the measured union configurations,
each workload's measured objective rows, and each workload's acquisition
picks.  Everything else (candidate pools, RNG positions, surrogate state)
is deliberately *not* stored: the campaign driver re-derives it by
replaying the cheap sampling steps for completed rounds, which keeps the
file format small and the resumed RNG streams bit-identical to an
uninterrupted run (see ``docs/runtime.md`` for the format and the replay
argument).

Checkpoints are JSON (finite ``float64`` values round-trip exactly through
``json``) and written atomically (temp file + ``os.replace``), so a
campaign killed mid-write never leaves a truncated checkpoint behind.  A
``fingerprint`` of the campaign specification is validated on resume:
resuming with different workloads, objectives or budgets raises
:class:`CheckpointMismatchError` instead of silently mixing campaigns.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

#: Format version written to (and required from) every checkpoint file.
CHECKPOINT_VERSION = 1


class CheckpointMismatchError(RuntimeError):
    """The checkpoint on disk belongs to a different campaign specification."""


def _jsonify(value: Any) -> Any:
    """Coerce NumPy scalars to plain Python so ``json`` can serialise them."""
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass
class RoundRecord:
    """Everything one completed round contributed to the campaign state."""

    #: Round number; ``-1`` is the initial-samples round.
    round_index: int
    #: The measured union of this round's per-workload selections.
    union_configs: list[dict]
    #: Per-workload pick positions into ``union_configs``.
    selections: dict[str, list[int]]
    #: Per-workload measured objective matrices over ``union_configs``.
    measured: dict[str, np.ndarray]
    #: Candidate-pool indices the union came from (sorted; empty for the
    #: initial-samples round, which has no pool).  On resume the campaign
    #: driver replays the round's pool and cross-checks
    #: ``pool[union_pool_indices] == union_configs`` — the guard that
    #: catches an engine rebuilt with the wrong seed for *every* campaign
    #: shape, including the default single-round one.
    union_pool_indices: list[int] = field(default_factory=list)
    #: Per-workload strategy-arm names (strategy-portfolio campaigns only;
    #: empty otherwise).  On resume the driver replays the bandit and
    #: cross-checks its selections against these — the guard that catches a
    #: portfolio rebuilt with different arms or bandit knobs.
    arms: dict[str, str] = field(default_factory=dict)
    #: Per-workload candidate-pool sizes (per-workload-pool campaigns only;
    #: empty for shared-pool rounds, whose pool replays from the sampler).
    #: Restores the ``candidates_screened`` accounting without re-proposing
    #: restored rounds.
    pool_sizes: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        payload = {
            "round_index": self.round_index,
            "union_configs": [
                {name: _jsonify(value) for name, value in config.items()}
                for config in self.union_configs
            ],
            "union_pool_indices": [int(i) for i in self.union_pool_indices],
            "selections": {
                workload: [int(i) for i in picks]
                for workload, picks in self.selections.items()
            },
            "measured": {
                workload: [[float(v) for v in row] for row in rows]
                for workload, rows in self.measured.items()
            },
        }
        if self.arms:
            payload["arms"] = {
                workload: str(arm) for workload, arm in self.arms.items()
            }
        if self.pool_sizes:
            payload["pool_sizes"] = {
                workload: int(size) for workload, size in self.pool_sizes.items()
            }
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "RoundRecord":
        return cls(
            round_index=int(payload["round_index"]),
            union_configs=[dict(config) for config in payload["union_configs"]],
            selections={
                workload: [int(i) for i in picks]
                for workload, picks in payload["selections"].items()
            },
            measured={
                workload: np.asarray(rows, dtype=np.float64)
                for workload, rows in payload["measured"].items()
            },
            union_pool_indices=[int(i) for i in payload["union_pool_indices"]],
            arms={
                workload: str(arm)
                for workload, arm in payload.get("arms", {}).items()
            },
            pool_sizes={
                workload: int(size)
                for workload, size in payload.get("pool_sizes", {}).items()
            },
        )


@dataclass
class CampaignCheckpoint:
    """Append-only record of a campaign's completed rounds."""

    path: Path
    fingerprint: dict
    rounds: list[RoundRecord] = field(default_factory=list)

    @classmethod
    def resume_or_start(
        cls, path: "str | Path", fingerprint: Mapping
    ) -> "CampaignCheckpoint":
        """Load the checkpoint at *path*, or start a fresh one.

        An existing file must match *fingerprint* exactly — a mismatch
        means the caller is trying to resume a different campaign into
        this file, which raises rather than corrupts.
        """
        path = Path(path)
        fingerprint = dict(fingerprint)
        if not path.exists():
            return cls(path=path, fingerprint=fingerprint)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            raise CheckpointMismatchError(
                f"{path}: not a readable campaign checkpoint ({error})"
            ) from error
        if payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointMismatchError(
                f"{path}: checkpoint version {payload.get('version')!r} != "
                f"{CHECKPOINT_VERSION}"
            )
        if payload.get("fingerprint") != fingerprint:
            raise CheckpointMismatchError(
                f"{path}: checkpoint belongs to a different campaign "
                f"specification\n  on disk:   {payload.get('fingerprint')}\n"
                f"  requested: {fingerprint}"
            )
        try:
            rounds = [RoundRecord.from_json(entry) for entry in payload["rounds"]]
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointMismatchError(
                f"{path}: malformed campaign checkpoint ({error!r})"
            ) from error
        return cls(path=path, fingerprint=fingerprint, rounds=rounds)

    def completed(self) -> dict[int, RoundRecord]:
        """Completed rounds keyed by round index."""
        return {record.round_index: record for record in self.rounds}

    def record_round(self, record: RoundRecord) -> None:
        """Append a completed round and persist the file atomically."""
        self.rounds.append(record)
        self.write()

    def write(self) -> None:
        payload = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "rounds": [record.to_json() for record in self.rounds],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temporary = self.path.with_name(self.path.name + ".tmp")
        with open(temporary, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(temporary, self.path)


def campaign_fingerprint(
    *,
    workloads: Sequence[str],
    objective_names: Sequence[str],
    maximize: Sequence[bool],
    simulation_budget: int,
    rounds: int,
    initial_samples: int,
    refit: bool,
    generator: str,
    acquisition: str,
    surrogates: Mapping[str, str],
) -> dict:
    """The campaign-specification fingerprint stored in every checkpoint.

    The strategy objects are identified by descriptor strings (class
    names): coarse, but enough to refuse resuming a checkpoint under a
    different acquisition policy or surrogate family — mixed-policy
    results would match neither the original nor an uninterrupted run.
    """
    return {
        "workloads": list(workloads),
        "objectives": list(objective_names),
        "maximize": [bool(flag) for flag in maximize],
        "simulation_budget": int(simulation_budget),
        "rounds": int(rounds),
        "initial_samples": int(initial_samples),
        "refit": bool(refit),
        "generator": generator,
        "acquisition": acquisition,
        "surrogates": dict(surrogates),
    }
