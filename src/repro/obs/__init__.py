"""Observability: zero-perturbation tracing and metrics (docs/observability.md).

The package follows the house policy-API style (``repro.nn.precision``,
``repro.nn.parallel``): a process-global session activated by a scoped
context manager, off by default with near-zero cost.

    from repro.obs import tracing, span

    with tracing("campaign.trace.jsonl"):
        with span("campaign.round", round=0):
            ...

The load-bearing invariant is **tracing on == tracing off bitwise**: spans
never touch RNG streams and never reorder work — they only read wall
clocks and append to an in-memory buffer that is published atomically
(temp + fsync + rename, the measurement-store discipline).  Worker-side
spans and counters under ``ThreadExecutor``/``ProcessExecutor`` are
recorded into :class:`WorkerTelemetry` buffers and carried back through
the existing join paths, then spliced under their parent span in shard
order, so the trace joins up identically across executors.
"""

from repro.obs.metrics import MetricsRegistry, add_counter, set_gauge
from repro.obs.report import render_summary, render_timeline, summarize_trace, timeline_rows
from repro.obs.sink import TRACE_VERSION, TraceSink, read_trace, validate_trace
from repro.obs.spans import (
    TraceSession,
    WorkerTelemetry,
    capture,
    current_session,
    event,
    record_span,
    run_captured,
    span,
    splice,
    trace_active,
    tracing,
)

__all__ = [
    "MetricsRegistry",
    "TRACE_VERSION",
    "TraceSession",
    "TraceSink",
    "WorkerTelemetry",
    "add_counter",
    "capture",
    "current_session",
    "event",
    "read_trace",
    "record_span",
    "render_summary",
    "render_timeline",
    "run_captured",
    "set_gauge",
    "span",
    "splice",
    "summarize_trace",
    "timeline_rows",
    "trace_active",
    "tracing",
    "validate_trace",
]
