"""Counters and gauges for the trace session (docs/observability.md).

:class:`MetricsRegistry` is a plain name → number accumulator owned by the
active :class:`~repro.obs.spans.TraceSession`; worker-side increments land
in :class:`~repro.obs.spans.WorkerTelemetry` buffers and are merged in at
splice time, so counter totals are identical across serial, thread and
process executors (the satellite contract of
``tests/test_runtime_equivalence.py``).

Module-level helpers route to whatever collector is active on the calling
thread and are no-ops when tracing is off, mirroring :func:`repro.obs.span`.

Counter taxonomy (dotted, ``layer.quantity``):

``sim.configs`` / ``sim.fresh`` / ``sim.cache_hits`` / ``sim.store_hits``
    batch-simulation tier accounting (requested keys; simulated fresh;
    served by the in-memory cache; served by the persistent store).
``sim.evaluations``
    per-(config, phase) analytical-model evaluations — mirrors
    ``Simulator.evaluation_count``.
``sim.cache_evictions``
    FIFO evictions from the bounded evaluation cache.
``store.flushes`` / ``store.flushed_records`` / ``store.refresh_records``
    persistent-store segment flushes, the rows they carried, and rows
    picked up from other campaigns by ``refresh``.
``dag.jobs`` / ``dag.inline_jobs``
    scheduled DAG jobs by kind (executor-submitted vs join-node inline).
``campaign.rounds`` / ``campaign.union_configs``
    campaign-runtime progress accounting.
``bandit.observations``
    portfolio arm/reward observations recorded by ``observe_round``.
"""

from __future__ import annotations

from repro.obs import spans as _spans


class MetricsRegistry:
    """Monotonic counters plus last-write-wins gauges."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    def add(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def merge(self, counters) -> None:
        """Fold a worker buffer's counter deltas into this registry."""
        for name, value in counters.items():
            self.add(name, value)

    def counters(self) -> dict[str, float]:
        return dict(sorted(self._counters.items()))

    def gauges(self) -> dict[str, float]:
        return dict(sorted(self._gauges.items()))

    def snapshot(self) -> dict:
        return {"counters": self.counters(), "gauges": self.gauges()}


def add_counter(name: str, value: float = 1.0) -> None:
    """Increment a counter on the active collector; no-op when tracing is off."""
    collector = _spans._collector()
    if collector is not None:
        collector.add_counter(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active *session* (gauges are parent-side only)."""
    session = _spans.current_session()
    if session is not None and _spans._STATE.capture is None:
        session.registry.set_gauge(name, value)
