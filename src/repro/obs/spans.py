"""Process-global trace session, spans, and worker-side capture buffers.

Policy-API shape (``repro.nn.precision`` is the exemplar): a module-global
session installed by the :func:`tracing` context manager, restored on
exit even under exceptions.  With no session installed every entry point
(:func:`span`, :func:`event`, counter helpers) is a near-zero-cost no-op
— two attribute reads and an early return — so instrumented code paths
cost nothing in the default, untraced configuration.

Two collectors implement the same small protocol:

* :class:`TraceSession` — the parent-side collector.  Assigns global span
  ids, buffers records into the :class:`~repro.obs.sink.TraceSink`, and
  owns the :class:`~repro.obs.metrics.MetricsRegistry`.  Spans are
  *emitted at close* (children therefore appear before their parents in
  the file; ids resolve the tree), which is what lets
  ``validate_trace`` certify "every span closed" from the end record.
* :class:`WorkerTelemetry` — a plain list-of-dicts buffer used inside
  executor tasks.  Workers never talk to the session (it does not exist
  in a spawned process); they record into a buffer that rides back on
  the task's return value through the existing join path, and the parent
  :func:`splice`\\ s it under the enclosing span in shard order.  Because
  the capture wrapper is installed for **every** executor kind, the trace
  has the same shape under serial, thread and process executors.

Timestamps are ``time.time()`` (epoch seconds): unlike ``perf_counter``,
whose epoch is per-process, wall-clock instants from process workers land
correctly on the parent timeline.

Determinism contract: nothing here reads or seeds any RNG, and nothing
reorders work — collectors only observe.  ``tracing on == tracing off
bitwise`` for every computed result (pinned by tests/test_obs_trace.py).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

from repro.obs.sink import TRACE_VERSION, TraceSink


class _ThreadState(threading.local):
    """Per-thread collector override and active parent span id."""

    def __init__(self) -> None:
        self.capture = None  # WorkerTelemetry shadowing the session, or None
        self.parent = None  # span id in the *current* collector's id space


_STATE = _ThreadState()

#: The process-global session; ``None`` means tracing is off.
_session = None


class WorkerTelemetry:
    """Side-channel buffer for spans/events/counters recorded in a worker.

    Local span ids are list indices; ``parent`` references are indices
    into the same list (``None`` for buffer roots).  The buffer is a
    plain picklable value object so it can ride back on executor task
    results.
    """

    __slots__ = ("entries", "counters")

    def __init__(self) -> None:
        self.entries: list[dict] = []
        self.counters: dict[str, float] = {}

    def __bool__(self) -> bool:
        return bool(self.entries) or bool(self.counters)

    def open_span(self, name, start, attrs, parent):
        self.entries.append(
            {
                "kind": "span",
                "name": name,
                "t_start": start,
                "t_end": None,
                "attrs": attrs,
                "parent": parent,
            }
        )
        return len(self.entries) - 1

    def close_span(self, local_id, end) -> None:
        self.entries[local_id]["t_end"] = end

    def add_event(self, name, ts, attrs, parent) -> None:
        self.entries.append(
            {
                "kind": "event",
                "name": name,
                "t_start": ts,
                "t_end": ts,
                "attrs": attrs,
                "parent": parent,
            }
        )

    def add_counter(self, name, value) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def absorb(self, other: "WorkerTelemetry", parent) -> None:
        """Graft *other* (a nested capture) under *parent* in this buffer.

        Mirrors :meth:`TraceSession.splice` with list indices as the id
        space, so a captured task that joins its own sub-tasks still hands
        a single flat buffer back through the executor.
        """
        local_to_here: dict[int, int] = {}
        for local_id, entry in enumerate(other.entries):
            mapped_parent = entry["parent"]
            if mapped_parent is not None:
                mapped_parent = local_to_here.get(mapped_parent)
            if mapped_parent is None:
                mapped_parent = parent
            grafted = dict(entry, parent=mapped_parent)
            self.entries.append(grafted)
            local_to_here[local_id] = len(self.entries) - 1
        for name, value in other.counters.items():
            self.add_counter(name, value)


class TraceSession:
    """Parent-side collector bound to one trace file for one ``tracing`` scope."""

    def __init__(self, path) -> None:
        from repro.obs.metrics import MetricsRegistry

        self.path = Path(path)
        self.sink = TraceSink(self.path)
        self.registry = MetricsRegistry()
        self._lock = threading.RLock()
        self._next_id = 1
        self._opened = 0
        self._closed = 0
        self._pending: dict[int, tuple] = {}
        self._finished = False
        self.sink.append(
            {
                "type": "meta",
                "version": TRACE_VERSION,
                "t_start": time.time(),
                "pid": os.getpid(),
            }
        )
        self.sink.flush(durable=False)

    # -- collector protocol -------------------------------------------------

    def open_span(self, name, start, attrs, parent):
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._opened += 1
            self._pending[span_id] = (name, start, attrs, parent)
            return span_id

    def close_span(self, span_id, end) -> None:
        with self._lock:
            if self._finished or span_id not in self._pending:
                return
            name, start, attrs, parent = self._pending.pop(span_id)
            self._closed += 1
            self._emit_span(name, start, end, attrs, parent, span_id)
            if not self._pending:
                # Top-level span closed: publish the trace so the on-disk
                # file tracks campaign progress (non-durable and rate-limited
                # by the sink; the final flush in finish() always fsyncs).
                self.sink.flush(durable=False)

    def add_event(self, name, ts, attrs, parent) -> None:
        with self._lock:
            record = {"type": "event", "name": name, "ts": ts}
            if parent is not None:
                record["parent"] = parent
            if attrs:
                record["attrs"] = attrs
            self.sink.append(record)

    def add_counter(self, name, value) -> None:
        self.registry.add(name, value)

    # -- parent-side services ----------------------------------------------

    def _emit_span(self, name, start, end, attrs, parent, span_id, worker=False):
        record = {
            "type": "span",
            "id": span_id,
            "parent": parent,
            "name": name,
            "t_start": start,
            "t_end": end,
            "dur": end - start,
        }
        if worker:
            record["worker"] = True
        if attrs:
            record["attrs"] = attrs
        self.sink.append(record)

    def splice(self, telemetry: WorkerTelemetry, parent) -> None:
        """Graft a worker buffer under *parent* (a session span id or None).

        Entries are replayed in buffer order (open order), so splicing the
        shard buffers in shard order reproduces a deterministic trace
        regardless of executor kind.  Unclosed worker entries (a task that
        died mid-span) are dropped rather than poisoning the span count.
        """
        if telemetry is None:
            return
        with self._lock:
            local_to_global: dict[int, int] = {}
            for local_id, entry in enumerate(telemetry.entries):
                mapped_parent = entry["parent"]
                if mapped_parent is not None:
                    mapped_parent = local_to_global.get(mapped_parent)
                if mapped_parent is None:
                    mapped_parent = parent
                if entry["kind"] == "event":
                    self.add_event(
                        entry["name"], entry["t_start"], entry["attrs"], mapped_parent
                    )
                    continue
                if entry["t_end"] is None:
                    continue
                span_id = self._next_id
                self._next_id += 1
                self._opened += 1
                self._closed += 1
                local_to_global[local_id] = span_id
                self._emit_span(
                    entry["name"],
                    entry["t_start"],
                    entry["t_end"],
                    entry["attrs"],
                    mapped_parent,
                    span_id,
                    worker=True,
                )
            self.registry.merge(telemetry.counters)

    def finish(self) -> None:
        with self._lock:
            if self._finished:
                return
            self._finished = True
            snapshot = self.registry.snapshot()
            if snapshot["counters"] or snapshot["gauges"]:
                self.sink.append({"type": "counters", **snapshot})
            self.sink.append(
                {
                    "type": "end",
                    "t_end": time.time(),
                    "spans": self._closed,
                    "open": self._opened - self._closed,
                }
            )
            self.sink.close()


# -- public policy API -----------------------------------------------------


def current_session() -> TraceSession | None:
    """The active session, or ``None`` when tracing is off."""
    return _session


def trace_active() -> bool:
    """True when this call should carry telemetry (session or capture)."""
    return _session is not None or _STATE.capture is not None


def _collector():
    capture = _STATE.capture
    if capture is not None:
        return capture
    return _session


@contextmanager
def tracing(path):
    """Activate tracing to *path* for the dynamic extent of the block.

    Exactly one session may be active per process; nesting raises.  The
    session is finalised (counters + end record, atomic flush) and the
    global cleared on exit, exceptions included.
    """
    global _session
    if _session is not None:
        raise RuntimeError("tracing is already active in this process")
    session = TraceSession(path)
    _session = session
    try:
        yield session
    finally:
        _session = None
        session.finish()


@contextmanager
def span(name, **attrs):
    """Record a wall-time span around the block; no-op when tracing is off."""
    collector = _collector()
    if collector is None:
        yield None
        return
    state = _STATE
    span_id = collector.open_span(name, time.time(), attrs, state.parent)
    previous = state.parent
    state.parent = span_id
    try:
        yield span_id
    finally:
        state.parent = previous
        collector.close_span(span_id, time.time())


def event(name, **attrs) -> None:
    """Record a zero-duration event under the active span (no-op when off)."""
    collector = _collector()
    if collector is None:
        return
    collector.add_event(name, time.time(), attrs, _STATE.parent)


def record_span(name, start, end, parent=None, **attrs):
    """Record an already-timed interval (e.g. a DAG job's run window).

    Returns the span id so children (worker buffers) can be spliced under
    it; ``None`` when tracing is off.  *parent* defaults to the thread's
    active span.
    """
    collector = _collector()
    if collector is None:
        return None
    if parent is None:
        parent = _STATE.parent
    span_id = collector.open_span(name, start, attrs, parent)
    collector.close_span(span_id, end)
    return span_id


@contextmanager
def capture():
    """Divert this thread's spans/counters into a fresh worker buffer.

    Entered at executor-task boundaries (every executor kind, including
    serial) so worker-side telemetry always travels through the join path
    instead of racing the session.
    """
    telemetry = WorkerTelemetry()
    state = _STATE
    previous = (state.capture, state.parent)
    state.capture, state.parent = telemetry, None
    try:
        yield telemetry
    finally:
        state.capture, state.parent = previous


def run_captured(fn, *args, **kwargs):
    """Invoke ``fn`` under :func:`capture`; returns ``(result, telemetry)``."""
    with capture() as telemetry:
        result = fn(*args, **kwargs)
    return result, telemetry


def splice(telemetry, parent=None) -> None:
    """Graft a worker buffer into the active collector (no-op when off).

    *parent* defaults to the calling thread's active span, which is the
    join point's enclosing span — exactly where shard work belongs.  A
    join running under :func:`capture` (a worker that fans out its own
    sub-tasks) absorbs the buffer into its capture instead, keeping the
    session single-writer.
    """
    if telemetry is None:
        return
    target = _STATE.capture
    if target is not None:
        target.absorb(telemetry, parent if parent is not None else _STATE.parent)
        return
    session = _session
    if session is None:
        return
    if parent is None:
        parent = _STATE.parent
    session.splice(telemetry, parent)
