"""Read-side rollups for ``repro trace summarize | timeline``.

Pure functions over the record list :func:`repro.obs.read_trace` returns:
no I/O, no globals, so the CLI smoke tests and the headline campaign test
can both drive them directly.
"""

from __future__ import annotations


def _span_records(records):
    return [record for record in records if record.get("type") == "span"]


def summarize_trace(records: list[dict]) -> dict:
    """Aggregate rollups: per-span-name, per-workload, rounds, counters."""
    spans = _span_records(records)
    by_name: dict[str, dict] = {}
    for record in spans:
        row = by_name.setdefault(
            record["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        row["count"] += 1
        row["total_s"] += record["dur"]
        row["max_s"] = max(row["max_s"], record["dur"])
    for row in by_name.values():
        row["mean_s"] = row["total_s"] / row["count"]

    by_workload: dict[str, dict[str, float]] = {}
    for record in spans:
        workload = (record.get("attrs") or {}).get("workload")
        if workload is None:
            continue
        row = by_workload.setdefault(str(workload), {})
        row[record["name"]] = row.get(record["name"], 0.0) + record["dur"]

    rounds = []
    for record in records:
        if record.get("type") == "event" and record.get("name") == "campaign.quality":
            rounds.append(dict(record.get("attrs") or {}))

    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    for record in records:
        if record.get("type") == "counters":
            counters.update(record.get("counters") or {})
            gauges.update(record.get("gauges") or {})

    meta = records[0] if records and records[0].get("type") == "meta" else {}
    end = records[-1] if records and records[-1].get("type") == "end" else {}
    wall = None
    if "t_start" in meta and "t_end" in end:
        wall = end["t_end"] - meta["t_start"]
    return {
        "spans": dict(sorted(by_name.items(), key=lambda kv: -kv[1]["total_s"])),
        "workloads": dict(sorted(by_workload.items())),
        "rounds": rounds,
        "counters": counters,
        "gauges": gauges,
        "span_count": len(spans),
        "worker_span_count": sum(1 for record in spans if record.get("worker")),
        "event_count": sum(1 for r in records if r.get("type") == "event"),
        "wall_seconds": wall,
    }


def timeline_rows(records: list[dict]) -> list[dict]:
    """Spans as ``{depth, offset_s, dur_s, name, worker, attrs}`` rows.

    Rows come out in start order; depth is the length of the parent chain,
    offsets are relative to the earliest span start, so the rows render
    directly as an indented timeline.
    """
    spans = {record["id"]: record for record in _span_records(records)}
    if not spans:
        return []

    def depth(record) -> int:
        level = 0
        parent = record.get("parent")
        while parent is not None:
            level += 1
            parent = spans[parent].get("parent") if parent in spans else None
        return level

    origin = min(record["t_start"] for record in spans.values())
    rows = []
    for record in sorted(spans.values(), key=lambda r: (r["t_start"], r["id"])):
        rows.append(
            {
                "depth": depth(record),
                "offset_s": record["t_start"] - origin,
                "dur_s": record["dur"],
                "name": record["name"],
                "worker": bool(record.get("worker")),
                "attrs": record.get("attrs") or {},
            }
        )
    return rows


def _format_attrs(attrs: dict) -> str:
    return " ".join(f"{key}={value}" for key, value in attrs.items())


def render_summary(summary: dict) -> str:
    """Human-readable ``repro trace summarize`` output."""
    lines = []
    if summary["wall_seconds"] is not None:
        lines.append(f"wall time: {summary['wall_seconds']:.3f}s")
    lines.append(
        f"spans: {summary['span_count']} "
        f"({summary['worker_span_count']} worker-side), "
        f"events: {summary['event_count']}"
    )
    lines.append("")
    lines.append("per-span rollup (by total time):")
    for name, row in summary["spans"].items():
        lines.append(
            f"  {name:<28} n={row['count']:<5} total={row['total_s']:.3f}s "
            f"mean={row['mean_s'] * 1e3:.2f}ms max={row['max_s'] * 1e3:.2f}ms"
        )
    if summary["workloads"]:
        lines.append("")
        lines.append("per-workload time by span:")
        for workload, row in summary["workloads"].items():
            parts = ", ".join(
                f"{name}={seconds:.3f}s" for name, seconds in sorted(row.items())
            )
            lines.append(f"  {workload}: {parts}")
    if summary["rounds"]:
        lines.append("")
        lines.append("round quality stream:")
        for entry in summary["rounds"]:
            parts = " ".join(f"{key}={value}" for key, value in entry.items())
            lines.append(f"  {parts}")
    if summary["counters"]:
        lines.append("")
        lines.append("counters:")
        for name, value in summary["counters"].items():
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name}: {rendered}")
    if summary["gauges"]:
        lines.append("")
        lines.append("gauges:")
        for name, value in summary["gauges"].items():
            lines.append(f"  {name}: {value}")
    return "\n".join(lines)


def render_timeline(rows: list[dict]) -> str:
    """Human-readable ``repro trace timeline`` output."""
    lines = []
    for row in rows:
        indent = "  " * row["depth"]
        marker = "~" if row["worker"] else "-"
        attrs = _format_attrs(row["attrs"])
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{row['offset_s']:9.3f}s {marker} {indent}{row['name']} "
            f"({row['dur_s'] * 1e3:.2f}ms){suffix}"
        )
    return "\n".join(lines)
