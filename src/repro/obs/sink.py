"""JSONL trace sink: atomic publication, NaN-safe encoding, tolerant reads.

A trace is a JSON-Lines file.  The first record is a ``meta`` line, the
last a ``end`` line carrying the span book-keeping that lets
:func:`validate_trace` prove every span was closed; in between come
``span``, ``event`` and ``counters`` records.

Writes follow the measurement-store discipline (``repro.store``): each
flush renders the *complete* record list into a temporary file in the
destination directory, fsyncs it, and ``os.replace``s it over the trace
path.  A reader therefore never observes a torn line from a live writer;
:func:`read_trace` additionally tolerates a truncated *tail* (a crash or
an external ``head -c``) by recovering the decodable prefix with a
warning, exactly like the store's segment recovery.

JSON forbids ``NaN``/``Infinity``; campaign quality streams contain both
(a single-objective hypervolume is ``NaN`` by contract — see
docs/benchmarks.md).  Non-finite floats are encoded reversibly as
``{"$float": "nan" | "inf" | "-inf"}`` so every line is strict JSON and
the round trip is exact.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from pathlib import Path

import numpy as np

#: Schema version stamped into the ``meta`` record.
TRACE_VERSION = 1

#: Record types a valid trace may contain.
RECORD_TYPES = frozenset({"meta", "span", "event", "counters", "end"})

_NONFINITE = {"nan": float("nan"), "inf": float("inf"), "-inf": float("-inf")}


def _sanitize(value):
    """Make *value* strict-JSON encodable without losing information."""
    if isinstance(value, dict):
        return {str(key): _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if value != value:
            return {"$float": "nan"}
        if value == float("inf"):
            return {"$float": "inf"}
        if value == float("-inf"):
            return {"$float": "-inf"}
        return value
    if value is None or isinstance(value, str):
        return value
    return str(value)


def _restore(value):
    """Inverse of :func:`_sanitize` (non-finite floats come back as floats)."""
    if isinstance(value, dict):
        if len(value) == 1 and "$float" in value:
            tag = value["$float"]
            if tag in _NONFINITE:
                return _NONFINITE[tag]
        return {key: _restore(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_restore(item) for item in value]
    return value


def encode_record(record: dict) -> str:
    """One trace record as a single strict-JSON line (no trailing newline).

    Most records are plain str/int/finite-float dicts, so try the direct
    dump first; non-finite floats (``ValueError``) and numpy scalars or
    other foreign objects (``TypeError``) take the :func:`_sanitize` path.
    """
    try:
        return json.dumps(record, allow_nan=False, separators=(",", ":"))
    except (TypeError, ValueError):
        return json.dumps(_sanitize(record), allow_nan=False, separators=(",", ":"))


def decode_record(line: str) -> dict:
    """Inverse of :func:`encode_record`."""
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError(f"trace line is not an object: {line!r}")
    return _restore(record)


class TraceSink:
    """Append-only record buffer published atomically on every flush."""

    #: Minimum seconds between non-durable publications.  Every flush
    #: rewrites the complete file (that is what makes publication atomic),
    #: so flushing at each top-level span close would turn a busy campaign
    #: into O(spans) full rewrites; rate-limiting bounds the rewrite work
    #: without giving up mid-run progress visibility.
    MIN_FLUSH_INTERVAL = 0.25

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lines: list[str] = []
        self._flushed = 0
        self._last_publish = 0.0
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._lines)

    def append(self, record: dict) -> None:
        """Buffer *record*; it reaches disk at the next :meth:`flush`."""
        self._lines.append(encode_record(record))

    def flush(self, durable: bool = True) -> None:
        """Publish the complete line list via temp + rename.

        The atomic ``os.replace`` alone guarantees readers never see a torn
        line; ``durable=True`` additionally fsyncs before the rename so the
        payload survives an OS crash.  Mid-run progress flushes pass
        ``durable=False`` — a trace is telemetry, not a ledger, and paying
        an fsync per top-level span would show up in the overhead budget —
        and are additionally rate-limited to one publication per
        :data:`MIN_FLUSH_INTERVAL`; :meth:`close` always publishes, durably.
        """
        if self._flushed == len(self._lines) and self.path.exists():
            return
        if not durable:
            now = time.monotonic()
            if now - self._last_publish < self.MIN_FLUSH_INTERVAL:
                return
            self._last_publish = now
        payload = "".join(line + "\n" for line in self._lines)
        handle, temp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(payload)
                if durable:
                    stream.flush()
                    os.fsync(stream.fileno())
            os.replace(temp_name, self.path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._flushed = len(self._lines)

    def close(self) -> None:
        self.flush(durable=True)


def read_trace(path) -> list[dict]:
    """Decode a trace file, tolerating a truncated tail.

    A line that fails to decode is accepted only when it is the *last*
    non-empty line (a torn tail from a crash or truncation): the decodable
    prefix is returned with a :class:`RuntimeWarning`.  A corrupt line in
    the middle of the file raises ``ValueError`` — that is damage, not
    truncation.
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = text.split("\n")
    records: list[dict] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(decode_record(line))
        except ValueError as error:
            if any(later.strip() for later in lines[index + 1 :]):
                raise ValueError(
                    f"corrupt trace line {index + 1} in {path}: {line[:80]!r}"
                ) from error
            warnings.warn(
                f"truncated trace tail in {path}: dropped undecodable final "
                f"line {index + 1}",
                RuntimeWarning,
                stacklevel=2,
            )
            break
    return records


def validate_trace(records: list[dict]) -> dict[int, dict]:
    """Structural validation; returns ``{span id: span record}``.

    Raises ``ValueError`` unless: the trace opens with a versioned ``meta``
    record and ends with an ``end`` record; every span has a unique
    positive id, a wall-clock interval with ``t_start <= t_end``, and a
    parent that is ``None`` or another span's id; every event's parent
    (when set) resolves; and the ``end`` book-keeping matches — exactly as
    many spans as recorded, with zero left open.  Because sessions emit
    spans only when they close, "zero open" certifies every span closed.
    """
    if not records:
        raise ValueError("empty trace")
    meta = records[0]
    if meta.get("type") != "meta":
        raise ValueError("trace does not start with a meta record")
    if meta.get("version") != TRACE_VERSION:
        raise ValueError(f"unsupported trace version: {meta.get('version')!r}")
    end = records[-1]
    if end.get("type") != "end":
        raise ValueError("trace does not finish with an end record (truncated?)")

    spans: dict[int, dict] = {}
    events: list[dict] = []
    for record in records:
        kind = record.get("type")
        if kind not in RECORD_TYPES:
            raise ValueError(f"unknown record type: {kind!r}")
        if kind == "span":
            span_id = record.get("id")
            if not isinstance(span_id, int) or span_id < 1:
                raise ValueError(f"bad span id: {span_id!r}")
            if span_id in spans:
                raise ValueError(f"duplicate span id: {span_id}")
            if not isinstance(record.get("name"), str) or not record["name"]:
                raise ValueError(f"span {span_id} has no name")
            if record.get("t_end") < record.get("t_start"):
                raise ValueError(f"span {span_id} closes before it opens")
            spans[span_id] = record
        elif kind == "event":
            events.append(record)

    for record in spans.values():
        parent = record.get("parent")
        if parent is not None and parent not in spans:
            raise ValueError(
                f"span {record['id']} has unknown parent {parent!r}"
            )
    for record in events:
        parent = record.get("parent")
        if parent is not None and parent not in spans:
            raise ValueError(f"event {record.get('name')!r} has unknown parent")

    if end.get("spans") != len(spans):
        raise ValueError(
            f"end record claims {end.get('spans')} spans, trace has {len(spans)}"
        )
    if end.get("open") != 0:
        raise ValueError(f"{end.get('open')} span(s) never closed")
    return spans
