"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Using
``as_rng`` at the boundary keeps experiments reproducible while letting tests
inject their own generators.
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

KeyLike = Union[int, str]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so that callers can
    share a single stream across components when they want correlated
    sampling.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create *count* independent generators derived from *seed*.

    Independent streams avoid the subtle coupling that arises when several
    components consume from one generator in an order that depends on
    configuration (e.g. the number of inner-loop steps).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def seed_entropy(seed: SeedLike = None) -> int:
    """Collapse *seed* into the integer entropy that keys pure RNG streams.

    ``None`` draws fresh OS entropy once (the resulting streams are still
    internally consistent); an integer passes through; a ``SeedSequence`` is
    collapsed via ``generate_state``.  A ``Generator`` is rejected — it
    carries mutable state and therefore cannot define a pure stream family.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "a numpy Generator carries mutable state and cannot seed keyed "
            "per-(workload, round) streams; pass an int or SeedSequence"
        )
    if seed is None:
        seed = np.random.SeedSequence()
    if isinstance(seed, np.random.SeedSequence):
        return int(seed.generate_state(1, np.uint64)[0])
    return int(seed)


def keyed_rng(entropy: int, *keys: KeyLike) -> np.random.Generator:
    """Create a generator that is a pure function of ``(entropy, *keys)``.

    String keys are hashed with CRC-32 (the same keyed-determinism idiom the
    simulator uses for per-workload SimPoint phases), integer keys pass
    through unchanged; the tuple becomes the ``spawn_key`` of a
    :class:`numpy.random.SeedSequence`.  Unlike a shared mutable generator,
    the stream for one key tuple is unaffected by how much any other stream
    has consumed — this is what makes sharded campaign proposals rank-stable.
    """
    spawn_key = tuple(
        zlib.crc32(key.encode("utf-8")) if isinstance(key, str) else int(key)
        for key in keys
    )
    return np.random.default_rng(
        np.random.SeedSequence(entropy=int(entropy), spawn_key=spawn_key)
    )


class RngMixin:
    """Mixin giving a class a lazily-created private generator.

    Sub-classes call ``self._init_rng(seed)`` in ``__init__`` and use
    ``self.rng`` afterwards.
    """

    _rng: Optional[np.random.Generator] = None

    def _init_rng(self, seed: SeedLike = None) -> None:
        self._rng = as_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = np.random.default_rng()
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the internal generator (useful for repeated experiments)."""
        self._rng = as_rng(seed)


def choice_without_replacement(
    rng: np.random.Generator, population: Sequence, size: int
) -> list:
    """Sample *size* distinct items from *population* preserving their type."""
    if size > len(population):
        raise ValueError(
            f"cannot sample {size} items from a population of {len(population)}"
        )
    idx = rng.choice(len(population), size=size, replace=False)
    return [population[int(i)] for i in idx]
