"""Small argument-validation helpers used across the library.

The helpers raise ``ValueError`` with a message that names the offending
argument, which keeps call sites terse and error messages consistent.
"""

from __future__ import annotations

from typing import Sized

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Ensure *value* is positive (strictly by default)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Ensure ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Ensure an array contains no NaN or infinity."""
    arr = np.asarray(array)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_same_length(name_a: str, a: Sized, name_b: str, b: Sized) -> None:
    """Ensure two sized containers have matching length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})"
        )
