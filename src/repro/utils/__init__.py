"""Shared utilities: deterministic RNG handling and validation helpers."""

from repro.utils.rng import RngMixin, as_rng, spawn_rngs
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_same_length,
)

__all__ = [
    "RngMixin",
    "as_rng",
    "spawn_rngs",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_same_length",
]
