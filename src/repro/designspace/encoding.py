"""Feature encoders that turn configurations into model inputs.

Two encoders are provided:

* :class:`OrdinalEncoder` — each parameter becomes one ``[0, 1]`` scalar by
  ordinal position.  This is the representation used by the transformer
  predictor (one token per parameter) and the tree baselines.
* :class:`OneHotEncoder` — each parameter becomes a one-hot block.  Used by
  the linear-fitting baseline where an ordinal encoding would impose an
  artificial linear ordering on categorical parameters.

Both encoders also expose the inverse transform so DSE results can be mapped
back to concrete configurations.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.designspace.space import Configuration, DesignSpace


class OrdinalEncoder:
    """Encode configurations as per-parameter normalised ordinals."""

    def __init__(self, space: DesignSpace) -> None:
        self.space = space

    @property
    def feature_dim(self) -> int:
        """Number of features produced per configuration."""
        return self.space.num_parameters

    @property
    def feature_names(self) -> list[str]:
        """One feature per parameter, named after it."""
        return list(self.space.parameter_names)

    def encode(self, config: Mapping) -> np.ndarray:
        """Encode one configuration."""
        return self.space.to_features(config)

    def encode_batch(self, configs: Iterable[Mapping]) -> np.ndarray:
        """Encode an iterable of configurations into an ``(n, d)`` matrix."""
        return self.space.batch_to_features(configs)

    def decode(self, features: Sequence[float]) -> Configuration:
        """Inverse of :meth:`encode` (snaps to the nearest candidates)."""
        return self.space.from_features(features)


class OneHotEncoder:
    """Encode configurations as concatenated one-hot blocks."""

    def __init__(self, space: DesignSpace) -> None:
        self.space = space
        self._offsets = np.concatenate(
            [[0], np.cumsum(space.cardinalities())]
        ).astype(np.int64)

    @property
    def feature_dim(self) -> int:
        """Total width of the one-hot encoding."""
        return int(self._offsets[-1])

    @property
    def feature_names(self) -> list[str]:
        """``parameter=value`` labels for every one-hot column."""
        names = []
        for parameter in self.space.parameters:
            names.extend(f"{parameter.name}={value}" for value in parameter.values)
        return names

    def encode(self, config: Mapping) -> np.ndarray:
        """Encode one configuration."""
        indices = self.space.to_indices(config)
        out = np.zeros(self.feature_dim, dtype=np.float64)
        out[self._offsets[:-1] + indices] = 1.0
        return out

    def encode_batch(self, configs: Iterable[Mapping]) -> np.ndarray:
        """Encode an iterable of configurations into an ``(n, d)`` matrix."""
        rows = [self.encode(c) for c in configs]
        if not rows:
            return np.empty((0, self.feature_dim), dtype=np.float64)
        return np.stack(rows, axis=0)

    def decode(self, features: Sequence[float]) -> Configuration:
        """Inverse of :meth:`encode`: pick the argmax within every block."""
        features = np.asarray(features, dtype=np.float64)
        if features.shape != (self.feature_dim,):
            raise ValueError(
                f"expected {self.feature_dim} features, got shape {features.shape}"
            )
        indices = []
        for pos in range(self.space.num_parameters):
            block = features[self._offsets[pos]:self._offsets[pos + 1]]
            indices.append(int(np.argmax(block)))
        return self.space.from_indices(indices)


class StandardScaler:
    """Feature standardisation (zero mean, unit variance) with safe inverses.

    Surrogate models train much more stably when labels (IPC, power) are
    standardised; the scaler remembers its statistics so predictions can be
    mapped back to physical units.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        """Compute the per-column mean and standard deviation."""
        values = np.asarray(values, dtype=np.float64)
        self.mean_ = values.mean(axis=0)
        std = values.std(axis=0)
        # Guard against constant columns: a zero std would blow up transform().
        self.std_ = np.where(std < 1e-12, 1.0, std)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Standardise *values* using the fitted statistics."""
        self._check_fitted()
        return (np.asarray(values, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        """Fit on *values* then transform them."""
        return self.fit(values).transform(values)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        """Map standardised values back to the original scale."""
        self._check_fitted()
        return np.asarray(values, dtype=np.float64) * self.std_ + self.mean_

    def _check_fitted(self) -> None:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("StandardScaler used before fit()")
