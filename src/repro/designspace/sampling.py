"""Design-point sampling strategies.

Three samplers are provided:

* :class:`RandomSampler` — uniform sampling over the candidate grid, used to
  generate the labelled datasets for all experiments;
* :class:`LatinHypercubeSampler` — stratified sampling that spreads points
  more evenly, used when generating small support sets;
* :class:`OrthogonalArraySampler` — the OA-style sampling referenced by the
  TrDSE/TrEE baselines (Section II-A of the paper); implemented as a strength-1
  balanced design over the ordinal grid.

All samplers deduplicate configurations when asked to (collisions are likely
for tiny parameter cardinalities) and are deterministic given a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.designspace.space import Configuration, DesignSpace
from repro.utils.rng import SeedLike, as_rng


class BaseSampler:
    """Common plumbing for samplers over a :class:`DesignSpace`."""

    def __init__(self, space: DesignSpace, *, seed: SeedLike = None) -> None:
        self.space = space
        self.rng = as_rng(seed)

    def sample(self, count: int, *, unique: bool = False) -> list[Configuration]:
        """Draw *count* configurations.

        With ``unique=True`` the sampler retries until it has *count* distinct
        configurations (or exhausts a generous retry budget, in which case it
        returns as many distinct points as it found — callers that need an
        exact count should check the length).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if not unique:
            return [self._sample_one() for _ in range(count)]
        seen: dict[tuple, Configuration] = {}
        budget = max(count * 20, 100)
        attempts = 0
        while len(seen) < count and attempts < budget:
            config = self._sample_one()
            key = tuple(self.space.to_indices(config).tolist())
            seen.setdefault(key, config)
            attempts += 1
        return list(seen.values())

    def _sample_one(self) -> Configuration:
        raise NotImplementedError


class RandomSampler(BaseSampler):
    """Uniform sampling over the ordinal grid."""

    def _sample_one(self) -> Configuration:
        indices = [
            int(self.rng.integers(0, p.cardinality)) for p in self.space.parameters
        ]
        return self.space.from_indices(indices)


class LatinHypercubeSampler(BaseSampler):
    """Stratified (Latin hypercube) sampling over the normalised hypercube.

    Each call to :meth:`sample` builds a fresh Latin hypercube of the
    requested size; the per-dimension strata are permuted independently and
    then snapped to the nearest candidate value.
    """

    def sample(self, count: int, *, unique: bool = False) -> list[Configuration]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        num_parameters = self.space.num_parameters
        # One stratified coordinate per (sample, dimension).
        positions = np.empty((count, num_parameters), dtype=np.float64)
        for dim in range(num_parameters):
            perm = self.rng.permutation(count)
            offsets = self.rng.random(count)
            positions[:, dim] = (perm + offsets) / count
        configs = [self.space.from_features(row) for row in positions]
        if unique:
            deduped: dict[tuple, Configuration] = {}
            for config in configs:
                key = tuple(self.space.to_indices(config).tolist())
                deduped.setdefault(key, config)
            return list(deduped.values())
        return configs

    def _sample_one(self) -> Configuration:  # pragma: no cover - not used directly
        return RandomSampler(self.space, seed=self.rng)._sample_one()


class OrthogonalArraySampler(BaseSampler):
    """Strength-1 balanced sampling (orthogonal-array style).

    For every parameter the candidate indices are tiled so that each level
    appears an (almost) equal number of times across the sample, then shuffled
    independently per column.  This reproduces the balanced coverage property
    that TrDSE [13] and TrEE [14] rely on, without requiring a true
    strength-2 orthogonal array for arbitrary mixed-level spaces (which does
    not generally exist).
    """

    def sample(self, count: int, *, unique: bool = False) -> list[Configuration]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        columns = []
        for parameter in self.space.parameters:
            levels = np.arange(parameter.cardinality)
            reps = int(np.ceil(count / parameter.cardinality))
            column = np.tile(levels, reps)[:count]
            self.rng.shuffle(column)
            columns.append(column)
        matrix = np.stack(columns, axis=1)
        configs = [self.space.from_indices(row) for row in matrix]
        if unique:
            deduped: dict[tuple, Configuration] = {}
            for config in configs:
                key = tuple(self.space.to_indices(config).tolist())
                deduped.setdefault(key, config)
            return list(deduped.values())
        return configs

    def foldover(self, configs: list[Configuration]) -> list[Configuration]:
        """OA foldover: mirror every configuration through the grid centre.

        TrEE refines TrDSE's sampling with a foldover strategy; mirroring the
        ordinal indices (`index -> cardinality - 1 - index`) doubles the design
        while preserving balance.
        """
        folded = []
        for config in configs:
            indices = self.space.to_indices(config)
            mirrored = self.space.cardinalities() - 1 - indices
            folded.append(self.space.from_indices(mirrored))
        return folded

    def _sample_one(self) -> Configuration:  # pragma: no cover - not used directly
        return RandomSampler(self.space, seed=self.rng)._sample_one()


def make_sampler(
    kind: str, space: DesignSpace, *, seed: Optional[SeedLike] = None
) -> BaseSampler:
    """Factory keyed by sampler name (``random`` / ``lhs`` / ``oa``)."""
    samplers = {
        "random": RandomSampler,
        "lhs": LatinHypercubeSampler,
        "oa": OrthogonalArraySampler,
    }
    try:
        cls = samplers[kind]
    except KeyError:
        raise ValueError(
            f"unknown sampler {kind!r}; choose from {sorted(samplers)}"
        ) from None
    return cls(space, seed=seed)
