"""Design-point sampling strategies.

Four samplers are provided:

* :class:`RandomSampler` — uniform sampling over the candidate grid, used to
  generate the labelled datasets for all experiments;
* :class:`LatinHypercubeSampler` — stratified sampling that spreads points
  more evenly, used when generating small support sets;
* :class:`OrthogonalArraySampler` — the OA-style sampling referenced by the
  TrDSE/TrEE baselines (Section II-A of the paper); implemented as a strength-1
  balanced design over the ordinal grid.
* :class:`FocusedSampler` — importance-guided sampling (AttentionDSE-style
  pruning, see ``docs/pruning.md``): spends the budget on the high-importance
  parameters and coarse-grids or clamps the rest.  With every parameter
  focused it consumes its RNG stream exactly like :class:`RandomSampler`,
  so ``keep_fraction=1.0`` degrades to uniform sampling bitwise.

All samplers deduplicate configurations when asked to (collisions are likely
for tiny parameter cardinalities) and are deterministic given a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.designspace.space import Configuration, DesignSpace
from repro.utils.rng import SeedLike, as_rng


class BaseSampler:
    """Common plumbing for samplers over a :class:`DesignSpace`."""

    def __init__(self, space: DesignSpace, *, seed: SeedLike = None) -> None:
        self.space = space
        self.rng = as_rng(seed)

    def sample(self, count: int, *, unique: bool = False) -> list[Configuration]:
        """Draw *count* configurations.

        With ``unique=True`` the sampler retries until it has *count* distinct
        configurations (or exhausts a generous retry budget, in which case it
        returns as many distinct points as it found — callers that need an
        exact count should check the length).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if not unique:
            return [self._sample_one() for _ in range(count)]
        seen: dict[tuple, Configuration] = {}
        budget = max(count * 20, 100)
        attempts = 0
        while len(seen) < count and attempts < budget:
            config = self._sample_one()
            key = tuple(self.space.to_indices(config).tolist())
            seen.setdefault(key, config)
            attempts += 1
        return list(seen.values())

    def _sample_one(self) -> Configuration:
        raise NotImplementedError


class RandomSampler(BaseSampler):
    """Uniform sampling over the ordinal grid."""

    def _sample_one(self) -> Configuration:
        indices = [
            int(self.rng.integers(0, p.cardinality)) for p in self.space.parameters
        ]
        return self.space.from_indices(indices)


class LatinHypercubeSampler(BaseSampler):
    """Stratified (Latin hypercube) sampling over the normalised hypercube.

    Each call to :meth:`sample` builds a fresh Latin hypercube of the
    requested size; the per-dimension strata are permuted independently and
    then snapped to the nearest candidate value.
    """

    def sample(self, count: int, *, unique: bool = False) -> list[Configuration]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        num_parameters = self.space.num_parameters
        # One stratified coordinate per (sample, dimension).
        positions = np.empty((count, num_parameters), dtype=np.float64)
        for dim in range(num_parameters):
            perm = self.rng.permutation(count)
            offsets = self.rng.random(count)
            positions[:, dim] = (perm + offsets) / count
        configs = [self.space.from_features(row) for row in positions]
        if unique:
            deduped: dict[tuple, Configuration] = {}
            for config in configs:
                key = tuple(self.space.to_indices(config).tolist())
                deduped.setdefault(key, config)
            return list(deduped.values())
        return configs

    def _sample_one(self) -> Configuration:  # pragma: no cover - not used directly
        return RandomSampler(self.space, seed=self.rng)._sample_one()


class OrthogonalArraySampler(BaseSampler):
    """Strength-1 balanced sampling (orthogonal-array style).

    For every parameter the candidate indices are tiled so that each level
    appears an (almost) equal number of times across the sample, then shuffled
    independently per column.  This reproduces the balanced coverage property
    that TrDSE [13] and TrEE [14] rely on, without requiring a true
    strength-2 orthogonal array for arbitrary mixed-level spaces (which does
    not generally exist).
    """

    def sample(self, count: int, *, unique: bool = False) -> list[Configuration]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        columns = []
        for parameter in self.space.parameters:
            levels = np.arange(parameter.cardinality)
            reps = int(np.ceil(count / parameter.cardinality))
            column = np.tile(levels, reps)[:count]
            self.rng.shuffle(column)
            columns.append(column)
        matrix = np.stack(columns, axis=1)
        configs = [self.space.from_indices(row) for row in matrix]
        if unique:
            deduped: dict[tuple, Configuration] = {}
            for config in configs:
                key = tuple(self.space.to_indices(config).tolist())
                deduped.setdefault(key, config)
            return list(deduped.values())
        return configs

    def foldover(self, configs: list[Configuration]) -> list[Configuration]:
        """OA foldover: mirror every configuration through the grid centre.

        TrEE refines TrDSE's sampling with a foldover strategy; mirroring the
        ordinal indices (`index -> cardinality - 1 - index`) doubles the design
        while preserving balance.
        """
        folded = []
        for config in configs:
            indices = self.space.to_indices(config)
            mirrored = self.space.cardinalities() - 1 - indices
            folded.append(self.space.from_indices(mirrored))
        return folded

    def _sample_one(self) -> Configuration:  # pragma: no cover - not used directly
        return RandomSampler(self.space, seed=self.rng)._sample_one()


class FocusedSampler(BaseSampler):
    """Importance-guided sampling: full resolution where attention points.

    *scores* is a per-parameter importance vector (an
    :class:`repro.meta.wam.ImportanceProfile` or any non-negative array of
    length ``space.num_parameters``).  The top ``ceil(keep_fraction * P)``
    parameters by score (ties broken towards the earlier declaration) keep
    their full candidate grids; every other parameter is restricted to a
    coarse sub-grid of at most *coarse_levels* evenly spaced levels
    (``coarse_levels=1`` clamps it to its median level, the same anchor as
    ``DesignSpace.default_configuration``).

    RNG contract: each draw consumes exactly one ``rng.integers(0, L_i)``
    per parameter in declaration order, where ``L_i`` is the number of
    retained levels.  With ``keep_fraction=1.0`` every ``L_i`` equals the
    parameter cardinality and the level map is the identity, so the sampler
    is **bitwise identical** to :class:`RandomSampler` on the same stream —
    the equivalence that lets ``FocusedPool(keep_fraction=1.0)`` degrade to
    ``RandomPool`` exactly (see ``tests/test_designspace_sampling.py``).
    """

    def __init__(
        self,
        space: DesignSpace,
        scores,
        *,
        keep_fraction: float = 0.5,
        coarse_levels: int = 1,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(space, seed=seed)
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(
                f"keep_fraction must be in (0, 1], got {keep_fraction}"
            )
        if coarse_levels < 1:
            raise ValueError(f"coarse_levels must be >= 1, got {coarse_levels}")
        values = np.asarray(
            getattr(scores, "scores", scores), dtype=np.float64
        ).reshape(-1)
        if values.shape[0] != space.num_parameters:
            raise ValueError(
                f"scores has {values.shape[0]} entries for a space with "
                f"{space.num_parameters} parameters"
            )
        if not np.all(np.isfinite(values)) or np.any(values < 0.0):
            raise ValueError("scores must be finite and non-negative")
        self.keep_fraction = float(keep_fraction)
        self.coarse_levels = int(coarse_levels)
        self.scores = values
        num_parameters = space.num_parameters
        keep = max(1, int(np.ceil(self.keep_fraction * num_parameters)))
        # Descending score, earlier declaration wins ties (lexsort is stable
        # on its last key, so negate scores and tiebreak on position).
        order = np.lexsort((np.arange(num_parameters), -values))
        mask = np.zeros(num_parameters, dtype=bool)
        mask[order[:keep]] = True
        self.focused_mask = mask
        self._levels: list[np.ndarray] = []
        for focused, parameter in zip(mask, space.parameters):
            cardinality = parameter.cardinality
            if focused or self.coarse_levels >= cardinality:
                levels = np.arange(cardinality)
            elif self.coarse_levels == 1:
                levels = np.array([cardinality // 2])
            else:
                levels = np.unique(
                    np.round(
                        np.linspace(0, cardinality - 1, self.coarse_levels)
                    ).astype(int)
                )
            self._levels.append(levels)

    def pool_cardinality(self) -> int:
        """Size of the pruned candidate grid (product of retained levels)."""
        return int(np.prod([len(levels) for levels in self._levels], dtype=object))

    def _sample_one(self) -> Configuration:
        indices = [
            int(levels[int(self.rng.integers(0, len(levels)))])
            for levels in self._levels
        ]
        return self.space.from_indices(indices)


def make_sampler(
    kind: str, space: DesignSpace, *, seed: Optional[SeedLike] = None
) -> BaseSampler:
    """Factory keyed by sampler name (``random`` / ``lhs`` / ``oa``)."""
    samplers = {
        "random": RandomSampler,
        "lhs": LatinHypercubeSampler,
        "oa": OrthogonalArraySampler,
    }
    try:
        cls = samplers[kind]
    except KeyError:
        raise ValueError(
            f"unknown sampler {kind!r}; choose from {sorted(samplers)}"
        ) from None
    return cls(space, seed=seed)
