"""The :class:`DesignSpace` container.

A design space is an ordered list of :class:`~repro.designspace.parameters.Parameter`
objects plus the operations every other layer needs:

* validating and completing configuration dictionaries,
* converting configurations to/from index vectors and normalised feature
  vectors (the representation fed to surrogate models),
* measuring the size of the space,
* enumerating neighbours of a configuration (used by the DSE loop).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.designspace.parameters import Parameter, ParameterError, ParameterValue

Configuration = dict[str, ParameterValue]


class DesignSpace:
    """An ordered, named collection of microarchitectural parameters."""

    def __init__(self, parameters: Sequence[Parameter], *, name: str = "design-space") -> None:
        if not parameters:
            raise ValueError("a design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names in design space")
        self._parameters: tuple[Parameter, ...] = tuple(parameters)
        self._by_name: dict[str, Parameter] = {p.name: p for p in self._parameters}
        self.name = name

    # -- basic container protocol ---------------------------------------
    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown parameter {name!r} in design space {self.name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DesignSpace(name={self.name!r}, num_parameters={len(self)})"

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """The parameters in declaration order."""
        return self._parameters

    @property
    def parameter_names(self) -> list[str]:
        """Parameter names in declaration order."""
        return [p.name for p in self._parameters]

    @property
    def num_parameters(self) -> int:
        """Number of parameters (the sequence length seen by the transformer)."""
        return len(self._parameters)

    def size(self) -> int:
        """Total number of distinct configurations (product of cardinalities)."""
        total = 1
        for p in self._parameters:
            total *= p.cardinality
        return total

    def cardinalities(self) -> np.ndarray:
        """Per-parameter candidate counts as an integer array."""
        return np.array([p.cardinality for p in self._parameters], dtype=np.int64)

    # -- configuration validation ----------------------------------------
    def validate(self, config: Mapping[str, ParameterValue]) -> Configuration:
        """Validate a full configuration and return a normalised copy.

        Raises
        ------
        ParameterError
            If a parameter is missing, unknown, or set to a non-candidate
            value.
        """
        unknown = set(config) - set(self._by_name)
        if unknown:
            raise ParameterError(
                f"unknown parameters {sorted(unknown)} for design space {self.name!r}"
            )
        missing = set(self._by_name) - set(config)
        if missing:
            raise ParameterError(
                f"missing parameters {sorted(missing)} for design space {self.name!r}"
            )
        validated: Configuration = {}
        for parameter in self._parameters:
            value = config[parameter.name]
            if not parameter.contains(value):
                raise ParameterError(
                    f"{value!r} is not a candidate for {parameter.name!r}"
                )
            validated[parameter.name] = value
        return validated

    def is_valid(self, config: Mapping[str, ParameterValue]) -> bool:
        """Boolean companion of :meth:`validate`."""
        try:
            self.validate(config)
        except ParameterError:
            return False
        return True

    # -- conversions -----------------------------------------------------
    def to_indices(self, config: Mapping[str, ParameterValue]) -> np.ndarray:
        """Convert a configuration to an ordinal index vector."""
        validated = self.validate(config)
        return np.array(
            [p.index_of(validated[p.name]) for p in self._parameters], dtype=np.int64
        )

    def from_indices(self, indices: Sequence[int]) -> Configuration:
        """Convert an ordinal index vector back to a configuration."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} indices, got shape {indices.shape}"
            )
        return {
            p.name: p.value_at(int(i)) for p, i in zip(self._parameters, indices)
        }

    def to_features(self, config: Mapping[str, ParameterValue]) -> np.ndarray:
        """Encode a configuration as a normalised ``[0, 1]`` feature vector."""
        validated = self.validate(config)
        return np.array(
            [p.normalized(validated[p.name]) for p in self._parameters], dtype=np.float64
        )

    def from_features(self, features: Sequence[float]) -> Configuration:
        """Decode a normalised feature vector to the nearest configuration."""
        features = np.asarray(features, dtype=np.float64)
        if features.shape != (self.num_parameters,):
            raise ValueError(
                f"expected {self.num_parameters} features, got shape {features.shape}"
            )
        return {
            p.name: p.denormalize(float(x)) for p, x in zip(self._parameters, features)
        }

    def batch_to_features(self, configs: Iterable[Mapping[str, ParameterValue]]) -> np.ndarray:
        """Vectorised :meth:`to_features` over an iterable of configurations."""
        rows = [self.to_features(c) for c in configs]
        if not rows:
            return np.empty((0, self.num_parameters), dtype=np.float64)
        return np.stack(rows, axis=0)

    def numeric_view(self, config: Mapping[str, ParameterValue]) -> dict[str, float]:
        """Return a numeric view of a configuration for analytical models."""
        validated = self.validate(config)
        return {
            p.name: p.numeric_value(validated[p.name]) for p in self._parameters
        }

    # -- neighbourhood ---------------------------------------------------
    def neighbors(self, config: Mapping[str, ParameterValue]) -> list[Configuration]:
        """Configurations that differ from *config* in exactly one ordinal step.

        Used by the hill-climbing style explorer in :mod:`repro.dse`.
        """
        indices = self.to_indices(config)
        result: list[Configuration] = []
        for pos, parameter in enumerate(self._parameters):
            for delta in (-1, 1):
                candidate = int(indices[pos]) + delta
                if 0 <= candidate < parameter.cardinality:
                    new_indices = indices.copy()
                    new_indices[pos] = candidate
                    result.append(self.from_indices(new_indices))
        return result

    def default_configuration(self) -> Configuration:
        """A mid-range configuration (median candidate of every parameter)."""
        return {
            p.name: p.value_at(p.cardinality // 2) for p in self._parameters
        }

    def describe(self) -> str:
        """Render a Table I style description of the space."""
        lines = [f"Design space {self.name!r}: {self.num_parameters} parameters, "
                 f"{self.size():.3e} configurations"]
        for p in self._parameters:
            preview = ", ".join(str(v) for v in p.values[:6])
            if p.cardinality > 6:
                preview += f", ... ({p.cardinality} candidates)"
            lines.append(f"  {p.name:24s} {p.description:55s} [{preview}]")
        return "\n".join(lines)
