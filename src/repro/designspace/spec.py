"""The out-of-order CPU design space of Table I.

Every parameter, its description and its candidate values are transcribed
from the paper.  Values given as ``start:end:stride`` in the table are
expanded with the end point included, matching the convention used by the
paper's open-source artefact (gem5 sweeps enumerate both endpoints).
"""

from __future__ import annotations

from repro.designspace.parameters import Parameter, categorical, ranged
from repro.designspace.space import DesignSpace

#: Branch predictor types explored by the paper.
BRANCH_PREDICTORS = ("BiModeBP", "TournamentBP")

#: Main-memory capacity (MB) used by every configuration (fixed, Table I note).
DRAM_SIZE_MB = 8192


def table1_parameters() -> list[Parameter]:
    """Return the 22 parameters of Table I in their published order."""
    return [
        categorical(
            "core_frequency_ghz",
            "the frequency of CPU core in GHz",
            (1.0, 1.5, 2.0, 2.5, 3.0),
        ),
        ranged(
            "pipeline_width",
            "fetch/decode/rename/dispatch/issue/writeback/commit width",
            1, 12, 1,
        ),
        categorical("fetch_buffer_bytes", "fetch buffer size in bytes", (16, 32, 64)),
        ranged("fetch_queue_uops", "fetch queue size in micro-ops", 8, 48, 4),
        categorical("branch_predictor", "predictor type", BRANCH_PREDICTORS),
        ranged("ras_size", "return address stack size", 16, 40, 2),
        categorical("btb_size", "branch target buffer size", (1024, 2048, 4096)),
        ranged("rob_size", "reorder buffer entries", 32, 256, 16),
        ranged("int_rf_size", "number of physical integer registers", 64, 256, 8),
        ranged("fp_rf_size", "number of physical floating-point registers", 64, 256, 8),
        ranged("inst_queue_size", "number of instruction queue entries", 16, 80, 8),
        ranged("load_queue_size", "number of load queue entries", 20, 48, 4),
        ranged("store_queue_size", "number of store queue entries", 20, 48, 4),
        ranged("int_alu_count", "number of integer ALUs", 3, 8, 1),
        ranged("int_muldiv_count", "number of integer multipliers and dividers", 1, 4, 1),
        ranged("fp_alu_count", "number of floating-point ALUs", 1, 4, 1),
        ranged("fp_muldiv_count", "number of floating-point multipliers and dividers", 1, 4, 1),
        categorical("cacheline_bytes", "cacheline size", (32, 64)),
        categorical("l1i_size_kb", "size of ICache in KB", (16, 32, 64)),
        categorical("l1_assoc", "associative sets of ICache", (2, 4)),
        categorical("l2_size_kb", "size of L2 Cache in KB", (128, 256)),
        categorical("l2_assoc", "associative sets of L2 Cache", (2, 4)),
    ]


def build_table1_space() -> DesignSpace:
    """Build the full Table I :class:`DesignSpace`.

    The paper lists the L1 entry as the instruction cache; the data cache is
    configured identically (gem5's ``O3CPU`` sweeps in the artefact tie the
    two together), so a single ``l1i_size_kb``/``l1_assoc`` pair drives both
    in the analytical simulator.
    """
    return DesignSpace(table1_parameters(), name="table1-ooo-cpu")


#: Friendly alias used throughout the examples and benchmarks.
def default_design_space() -> DesignSpace:
    """Alias of :func:`build_table1_space` (the space every experiment uses)."""
    return build_table1_space()
