"""Design-space layer: Table I parameters, encoding and sampling."""

from repro.designspace.encoding import OneHotEncoder, OrdinalEncoder, StandardScaler
from repro.designspace.parameters import (
    Parameter,
    ParameterError,
    ParameterStatistics,
    categorical,
    ranged,
    strided_range,
)
from repro.designspace.sampling import (
    FocusedSampler,
    LatinHypercubeSampler,
    OrthogonalArraySampler,
    RandomSampler,
    make_sampler,
)
from repro.designspace.space import Configuration, DesignSpace
from repro.designspace.spec import (
    BRANCH_PREDICTORS,
    DRAM_SIZE_MB,
    build_table1_space,
    default_design_space,
    table1_parameters,
)

__all__ = [
    "Parameter",
    "ParameterError",
    "ParameterStatistics",
    "categorical",
    "ranged",
    "strided_range",
    "Configuration",
    "DesignSpace",
    "OrdinalEncoder",
    "OneHotEncoder",
    "StandardScaler",
    "RandomSampler",
    "LatinHypercubeSampler",
    "OrthogonalArraySampler",
    "FocusedSampler",
    "make_sampler",
    "BRANCH_PREDICTORS",
    "DRAM_SIZE_MB",
    "table1_parameters",
    "build_table1_space",
    "default_design_space",
]
