"""Microarchitectural parameter declarations.

A design space is an ordered collection of named parameters.  The paper's
Table I uses two kinds of parameters:

* strided integer ranges written as ``start:end:stride`` (e.g. ROB size
  ``32:256:16``), and
* explicit candidate lists (e.g. cache line size ``32/64`` or the branch
  predictor type ``BiModeBP``/``TournamentBP``).

Both are modelled here with a common interface: a parameter knows its
candidate values, can map a value to/from an ordinal index, and can report a
normalised ``[0, 1]`` position used when encoding configurations for machine
learning models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

import numpy as np

ParameterValue = Union[int, float, str]


class ParameterError(ValueError):
    """Raised when a value does not belong to a parameter's candidate set."""


@dataclass(frozen=True)
class Parameter:
    """A single named microarchitectural parameter.

    Attributes
    ----------
    name:
        Identifier used in configuration dictionaries (e.g. ``"rob_size"``).
    description:
        Human-readable description straight from Table I.
    values:
        Ordered tuple of candidate values.  Order matters: it defines the
        ordinal index used for encoding.
    """

    name: str
    description: str
    values: tuple[ParameterValue, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"parameter {self.name!r} has no candidate values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"parameter {self.name!r} has duplicate candidates")

    # -- cardinality ----------------------------------------------------
    @property
    def cardinality(self) -> int:
        """Number of candidate values."""
        return len(self.values)

    @property
    def is_numeric(self) -> bool:
        """True when every candidate is an int or float."""
        return all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in self.values)

    # -- value <-> index ------------------------------------------------
    def index_of(self, value: ParameterValue) -> int:
        """Return the ordinal index of *value*.

        Numeric values are matched with exact equality; raising on unknown
        values catches configuration typos early.
        """
        try:
            return self.values.index(value)
        except ValueError:
            raise ParameterError(
                f"{value!r} is not a candidate for parameter {self.name!r}; "
                f"candidates are {list(self.values)}"
            ) from None

    def value_at(self, index: int) -> ParameterValue:
        """Return the candidate at ordinal *index*."""
        if not 0 <= index < self.cardinality:
            raise ParameterError(
                f"index {index} out of range for parameter {self.name!r} "
                f"with {self.cardinality} candidates"
            )
        return self.values[index]

    def contains(self, value: ParameterValue) -> bool:
        """True when *value* is a legal candidate."""
        return value in self.values

    # -- normalised encoding -------------------------------------------
    def normalized(self, value: ParameterValue) -> float:
        """Map *value* to ``[0, 1]`` by ordinal position.

        Using the ordinal position (rather than the numeric magnitude) keeps
        categorical and numeric parameters on the same footing and matches
        how the surrogate models in the paper embed each parameter
        independently.
        """
        if self.cardinality == 1:
            return 0.0
        return self.index_of(value) / (self.cardinality - 1)

    def denormalize(self, position: float) -> ParameterValue:
        """Map a ``[0, 1]`` position back to the nearest candidate value."""
        position = float(np.clip(position, 0.0, 1.0))
        index = int(round(position * (self.cardinality - 1)))
        return self.value_at(index)

    # -- numeric view ---------------------------------------------------
    def numeric_value(self, value: ParameterValue) -> float:
        """Return a numeric view of *value* for use in analytical models.

        Categorical parameters fall back to their ordinal index, which is
        sufficient for the synthetic simulator (it looks the value up by name
        anyway).
        """
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        return float(self.index_of(value))


def strided_range(start: int, end: int, stride: int) -> tuple[int, ...]:
    """Expand a Table I ``start:end:stride`` specification (end inclusive)."""
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    if end < start:
        raise ValueError(f"end ({end}) must be >= start ({start})")
    return tuple(range(start, end + 1, stride))


def categorical(name: str, description: str, values: Sequence[ParameterValue]) -> Parameter:
    """Convenience constructor for an explicit candidate list."""
    return Parameter(name=name, description=description, values=tuple(values))


def ranged(name: str, description: str, start: int, end: int, stride: int) -> Parameter:
    """Convenience constructor for a ``start:end:stride`` parameter."""
    return Parameter(name=name, description=description, values=strided_range(start, end, stride))


@dataclass
class ParameterStatistics:
    """Simple descriptive statistics of a parameter's candidates.

    Used by the documentation example and by tests that validate the design
    space size reported in DESIGN.md.
    """

    name: str
    cardinality: int
    minimum: ParameterValue = field(default=None)
    maximum: ParameterValue = field(default=None)

    @classmethod
    def from_parameter(cls, parameter: Parameter) -> "ParameterStatistics":
        if parameter.is_numeric:
            return cls(
                name=parameter.name,
                cardinality=parameter.cardinality,
                minimum=min(parameter.values),
                maximum=max(parameter.values),
            )
        return cls(name=parameter.name, cardinality=parameter.cardinality)
