"""Labelled-dataset generation (the paper's "Datasets Generation" step).

For every workload, a set of design points is sampled from the Table I space
and simulated, producing IPC and power labels.  The same design points are
used for every workload (a "full factorial over workloads" layout), which is
how the paper's artefact sweeps gem5 and what the Wasserstein similarity
analysis of Fig. 2 requires (it compares label distributions over a common
set of configurations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.designspace.encoding import OrdinalEncoder
from repro.designspace.sampling import RandomSampler, make_sampler
from repro.designspace.space import Configuration, DesignSpace
from repro.sim.simulator import Simulator
from repro.utils.rng import SeedLike, as_rng

#: Metrics every dataset carries, in canonical order.
METRICS = ("ipc", "power")


@dataclass
class WorkloadDataset:
    """Labelled design points of a single workload.

    Attributes
    ----------
    workload:
        The workload name (e.g. ``"605.mcf_s"``).
    features:
        Encoded configurations, shape ``(n, num_parameters)``.
    labels:
        Mapping from metric name (``"ipc"``, ``"power"``) to an ``(n,)``
        label vector.
    configs:
        The raw configurations, kept so results can be traced back to
        concrete design points.
    """

    workload: str
    features: np.ndarray
    labels: dict[str, np.ndarray]
    configs: list[Configuration] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = self.features.shape[0]
        for metric, values in self.labels.items():
            if values.shape != (n,):
                raise ValueError(
                    f"label {metric!r} has shape {values.shape}, expected ({n},)"
                )

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        """Feature dimensionality (number of architectural parameters)."""
        return self.features.shape[1]

    def metric(self, name: str) -> np.ndarray:
        """Return the label vector for *name* (defensive copy not taken)."""
        try:
            return self.labels[name]
        except KeyError:
            raise KeyError(
                f"dataset for {self.workload!r} has no metric {name!r}; "
                f"available: {sorted(self.labels)}"
            ) from None

    def subset(self, indices: Sequence[int]) -> "WorkloadDataset":
        """Return a new dataset restricted to *indices*."""
        indices = np.asarray(indices, dtype=np.int64)
        return WorkloadDataset(
            workload=self.workload,
            features=self.features[indices],
            labels={k: v[indices] for k, v in self.labels.items()},
            configs=[self.configs[int(i)] for i in indices] if self.configs else [],
        )

    def split(self, first_size: int, *, seed: SeedLike = None) -> tuple["WorkloadDataset", "WorkloadDataset"]:
        """Randomly split into two disjoint datasets (first has *first_size* rows)."""
        if not 0 <= first_size <= len(self):
            raise ValueError(
                f"first_size must be in [0, {len(self)}], got {first_size}"
            )
        rng = as_rng(seed)
        order = rng.permutation(len(self))
        return self.subset(order[:first_size]), self.subset(order[first_size:])


@dataclass
class DSEDataset:
    """A collection of per-workload datasets sharing the same design points."""

    space: DesignSpace
    per_workload: dict[str, WorkloadDataset]

    def __len__(self) -> int:
        return len(self.per_workload)

    def __contains__(self, workload: str) -> bool:
        return workload in self.per_workload

    def __getitem__(self, workload: str) -> WorkloadDataset:
        try:
            return self.per_workload[workload]
        except KeyError:
            raise KeyError(
                f"no dataset for workload {workload!r}; available: {self.workloads}"
            ) from None

    @property
    def workloads(self) -> list[str]:
        """Workload names in insertion order."""
        return list(self.per_workload)

    @property
    def num_points(self) -> int:
        """Number of design points per workload."""
        if not self.per_workload:
            return 0
        return len(next(iter(self.per_workload.values())))

    def subset_workloads(self, names: Iterable[str]) -> "DSEDataset":
        """Restrict the collection to the given workloads (order preserved)."""
        return DSEDataset(
            space=self.space,
            per_workload={name: self[name] for name in names},
        )


def generate_dataset(
    simulator: Optional[Simulator] = None,
    *,
    workloads: Optional[Sequence[str]] = None,
    num_points: int = 500,
    sampler_kind: str = "random",
    seed: SeedLike = 2024,
    executor=None,
) -> DSEDataset:
    """Sample and simulate a labelled dataset.

    Parameters
    ----------
    simulator:
        The simulation substrate; a default :class:`Simulator` is built when
        omitted.
    workloads:
        Workload names to label; defaults to every workload the simulator
        knows (the 17 SPEC CPU 2017 profiles).
    num_points:
        Number of design points (shared by all workloads).
    sampler_kind:
        ``"random"`` / ``"lhs"`` / ``"oa"`` — see :mod:`repro.designspace.sampling`.
    seed:
        Controls design-point sampling (the simulator has its own seed).
    executor:
        Optional :class:`~repro.runtime.executors.Executor`: the labelling
        sweep is sharded over ``(configs x workloads)`` and produces a
        bitwise-identical dataset (noise-free simulators only; see
        ``docs/runtime.md``).
    """
    if num_points < 1:
        raise ValueError(f"num_points must be >= 1, got {num_points}")
    simulator = simulator if simulator is not None else Simulator()
    space = simulator.space
    names = list(workloads) if workloads is not None else simulator.workload_names()

    sampler = make_sampler(sampler_kind, space, seed=seed)
    configs = sampler.sample(num_points)
    encoder = OrdinalEncoder(space)
    features = encoder.encode_batch(configs)

    per_workload: dict[str, WorkloadDataset] = {}
    # run_batch returns freshly-allocated metric arrays, so the labels can
    # be stored without defensive copies.
    for name, batch in simulator.run_sweep(configs, names, executor=executor).items():
        labels = {
            "ipc": batch.ipc,
            "power": batch.power_w,
        }
        per_workload[name] = WorkloadDataset(
            workload=name, features=features.copy(), labels=labels, configs=list(configs)
        )
    return DSEDataset(space=space, per_workload=per_workload)
