"""Workload-level dataset splits.

The paper "iteratively and randomly designated seven datasets for training,
five for validation, and five for testing".  Two kinds of splits are
provided:

* :func:`random_split` — one random 7/5/5 partition;
* :func:`rotating_splits` — a sequence of partitions in which every workload
  appears in the test set exactly once (the "iteratively" part), which is
  what the per-workload results of Fig. 5 require;
* :func:`paper_split` — the split whose test set is the five workloads that
  Table II averages over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.workloads.spec2017 import SPEC2017_WORKLOAD_NAMES, TABLE2_TEST_WORKLOADS

#: The paper's split sizes (train / validation / test workload counts).
PAPER_SPLIT_SIZES = (7, 5, 5)


@dataclass(frozen=True)
class WorkloadSplit:
    """A partition of workload names into train / validation / test sets."""

    train: tuple[str, ...]
    validation: tuple[str, ...]
    test: tuple[str, ...]

    def __post_init__(self) -> None:
        overlap = (
            set(self.train) & set(self.validation)
            | set(self.train) & set(self.test)
            | set(self.validation) & set(self.test)
        )
        if overlap:
            raise ValueError(f"split sets overlap on {sorted(overlap)}")
        if not self.train or not self.test:
            raise ValueError("train and test sets must be non-empty")

    @property
    def all_workloads(self) -> tuple[str, ...]:
        """Every workload mentioned by the split."""
        return self.train + self.validation + self.test

    def describe(self) -> str:
        """Readable one-line-per-set description."""
        return (
            f"train({len(self.train)}): {', '.join(self.train)}\n"
            f"validation({len(self.validation)}): {', '.join(self.validation)}\n"
            f"test({len(self.test)}): {', '.join(self.test)}"
        )


def random_split(
    workloads: Sequence[str] = SPEC2017_WORKLOAD_NAMES,
    *,
    sizes: tuple[int, int, int] = PAPER_SPLIT_SIZES,
    seed: SeedLike = 0,
) -> WorkloadSplit:
    """Draw one random train/validation/test split of the given sizes."""
    n_train, n_val, n_test = sizes
    if n_train + n_val + n_test > len(workloads):
        raise ValueError(
            f"split sizes {sizes} exceed the {len(workloads)} available workloads"
        )
    rng = as_rng(seed)
    order = [workloads[int(i)] for i in rng.permutation(len(workloads))]
    return WorkloadSplit(
        train=tuple(order[:n_train]),
        validation=tuple(order[n_train:n_train + n_val]),
        test=tuple(order[n_train + n_val:n_train + n_val + n_test]),
    )


def paper_split(
    workloads: Sequence[str] = SPEC2017_WORKLOAD_NAMES,
    *,
    seed: SeedLike = 0,
) -> WorkloadSplit:
    """The split whose test set matches Table II's five test workloads.

    The remaining twelve workloads are partitioned 7/5 into train and
    validation sets (deterministically for a given seed).
    """
    test = tuple(TABLE2_TEST_WORKLOADS)
    remaining = [w for w in workloads if w not in test]
    rng = as_rng(seed)
    order = [remaining[int(i)] for i in rng.permutation(len(remaining))]
    return WorkloadSplit(
        train=tuple(order[:PAPER_SPLIT_SIZES[0]]),
        validation=tuple(order[PAPER_SPLIT_SIZES[0]:]),
        test=test,
    )


def rotating_splits(
    workloads: Sequence[str] = SPEC2017_WORKLOAD_NAMES,
    *,
    test_size: int = 5,
    validation_size: int = 5,
    seed: SeedLike = 0,
) -> list[WorkloadSplit]:
    """Partitions in which every workload is tested exactly once.

    The workloads are shuffled once and then consumed in chunks of
    *test_size*; for each chunk the remaining workloads are divided into
    validation and training sets.  The last chunk may be smaller than
    *test_size* when the workload count is not divisible.
    """
    if test_size < 1:
        raise ValueError(f"test_size must be >= 1, got {test_size}")
    rng = as_rng(seed)
    order = [workloads[int(i)] for i in rng.permutation(len(workloads))]
    splits: list[WorkloadSplit] = []
    for start in range(0, len(order), test_size):
        test = tuple(order[start:start + test_size])
        rest = [w for w in order if w not in test]
        val_count = min(validation_size, max(len(rest) - 1, 0))
        validation = tuple(rest[:val_count])
        train = tuple(rest[val_count:])
        splits.append(WorkloadSplit(train=train, validation=validation, test=test))
    return splits
