"""Saving and loading labelled DSE datasets.

Generating labels is the expensive step of the pipeline (the stand-in for
running gem5 on SPEC CPU 2017), so the CLI and the examples persist datasets
to a single compressed ``.npz`` archive and reload them later.  The archive
stores, per workload, the encoded feature matrix, every metric vector and the
per-parameter *index* matrix of the underlying configurations, plus the
design-space parameter names so a mismatched space is detected at load time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np

from repro.datasets.generation import DSEDataset, WorkloadDataset
from repro.designspace.space import DesignSpace
from repro.designspace.spec import build_table1_space

#: Archive format marker (bumped on incompatible layout changes).
FORMAT_VERSION = 1


def save_dataset(dataset: DSEDataset, path: "str | Path") -> Path:
    """Write *dataset* to a compressed ``.npz`` archive and return its path."""
    path = Path(path)
    if not dataset.per_workload:
        raise ValueError("cannot save an empty dataset")
    arrays: dict[str, np.ndarray] = {
        "format_version": np.array([FORMAT_VERSION], dtype=np.int64),
        "parameter_names": np.array(dataset.space.parameter_names, dtype=np.str_),
        "workloads": np.array(dataset.workloads, dtype=np.str_),
    }
    for name, data in dataset.per_workload.items():
        arrays[f"features::{name}"] = data.features
        for metric, values in data.labels.items():
            arrays[f"label::{name}::{metric}"] = values
        if data.configs:
            arrays[f"indices::{name}"] = np.stack(
                [dataset.space.to_indices(config) for config in data.configs], axis=0
            )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_dataset(path: "str | Path", *, space: Optional[DesignSpace] = None) -> DSEDataset:
    """Load a dataset previously written by :func:`save_dataset`.

    The design space defaults to the Table I space; pass *space* explicitly
    when the archive was generated from a custom space with the same
    parameter names.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no dataset archive at {path}")
    archive = np.load(path, allow_pickle=False)
    version = int(archive["format_version"][0])
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset archive version {version} (expected {FORMAT_VERSION})"
        )
    space = space if space is not None else build_table1_space()
    stored_names = [str(name) for name in archive["parameter_names"]]
    if stored_names != space.parameter_names:
        raise ValueError(
            "dataset archive was generated from a different design space: "
            f"{stored_names} vs {space.parameter_names}"
        )

    per_workload: dict[str, WorkloadDataset] = {}
    for name in (str(w) for w in archive["workloads"]):
        features = archive[f"features::{name}"]
        labels = {}
        prefix = f"label::{name}::"
        for key in archive.files:
            if key.startswith(prefix):
                labels[key[len(prefix):]] = archive[key]
        configs = []
        indices_key = f"indices::{name}"
        if indices_key in archive.files:
            configs = [space.from_indices(row) for row in archive[indices_key]]
        per_workload[name] = WorkloadDataset(
            workload=name, features=features, labels=labels, configs=configs
        )
    return DSEDataset(space=space, per_workload=per_workload)
