"""Episodic task construction for meta-learning.

In MAML each *task* is a tiny dataset drawn from one workload: a support set
of ``s`` labelled design points used for inner-loop adaptation and a query
set of ``q`` points used to compute the meta-loss (Algorithm 1 line 6).  The
paper uses ``s = 5`` support and ``q = 45`` query samples, 200 tasks per
workload per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.datasets.generation import DSEDataset, WorkloadDataset
from repro.utils.rng import SeedLike, as_rng

#: Paper defaults for episodic sampling.
DEFAULT_SUPPORT_SIZE = 5
DEFAULT_QUERY_SIZE = 45


@dataclass(frozen=True)
class Task:
    """One meta-learning episode drawn from a single workload."""

    workload: str
    metric: str
    support_x: np.ndarray
    support_y: np.ndarray
    query_x: np.ndarray
    query_y: np.ndarray

    def __post_init__(self) -> None:
        if self.support_x.shape[0] != self.support_y.shape[0]:
            raise ValueError("support features/labels length mismatch")
        if self.query_x.shape[0] != self.query_y.shape[0]:
            raise ValueError("query features/labels length mismatch")

    @property
    def support_size(self) -> int:
        """Number of support samples."""
        return self.support_x.shape[0]

    @property
    def query_size(self) -> int:
        """Number of query samples."""
        return self.query_x.shape[0]


class TaskSampler:
    """Sample support/query episodes from per-workload datasets.

    Parameters
    ----------
    dataset:
        The labelled multi-workload dataset.
    metric:
        Which label to expose (``"ipc"`` or ``"power"``).
    support_size, query_size:
        Episode sizes; the paper's defaults are 5 and 45.
    seed:
        Determinism handle.
    """

    def __init__(
        self,
        dataset: DSEDataset,
        *,
        metric: str = "ipc",
        support_size: int = DEFAULT_SUPPORT_SIZE,
        query_size: int = DEFAULT_QUERY_SIZE,
        seed: SeedLike = 0,
    ) -> None:
        if support_size < 1 or query_size < 1:
            raise ValueError("support_size and query_size must be >= 1")
        self.dataset = dataset
        self.metric = metric
        self.support_size = support_size
        self.query_size = query_size
        self.rng = as_rng(seed)

    def sample_task(self, workload: str) -> Task:
        """Sample one episode from *workload*."""
        data: WorkloadDataset = self.dataset[workload]
        needed = self.support_size + self.query_size
        if needed > len(data):
            raise ValueError(
                f"workload {workload!r} has only {len(data)} points; "
                f"{needed} needed for an episode"
            )
        indices = self.rng.choice(len(data), size=needed, replace=False)
        support_idx = indices[: self.support_size]
        query_idx = indices[self.support_size:]
        labels = data.metric(self.metric)
        return Task(
            workload=workload,
            metric=self.metric,
            support_x=data.features[support_idx],
            support_y=labels[support_idx],
            query_x=data.features[query_idx],
            query_y=labels[query_idx],
        )

    def sample_batch(
        self, workloads: Optional[Sequence[str]] = None, tasks_per_workload: int = 1
    ) -> list[Task]:
        """Sample ``tasks_per_workload`` episodes from every listed workload."""
        if tasks_per_workload < 1:
            raise ValueError("tasks_per_workload must be >= 1")
        names = list(workloads) if workloads is not None else self.dataset.workloads
        tasks: list[Task] = []
        for name in names:
            tasks.extend(self.sample_task(name) for _ in range(tasks_per_workload))
        return tasks

    def iterate_epoch(
        self,
        workloads: Optional[Sequence[str]] = None,
        *,
        tasks_per_workload: int = 200,
        batch_size: int = 4,
    ) -> Iterator[list[Task]]:
        """Yield shuffled task batches covering one meta-training epoch.

        The paper uses 200 tasks per workload per epoch; batches mix tasks
        from different workloads, which is what lets MAML see the task
        distribution rather than one workload at a time.
        """
        names = list(workloads) if workloads is not None else self.dataset.workloads
        schedule = [name for name in names for _ in range(tasks_per_workload)]
        order = self.rng.permutation(len(schedule))
        batch: list[Task] = []
        for position in order:
            batch.append(self.sample_task(schedule[int(position)]))
            if len(batch) == batch_size:
                yield batch
                batch = []
        if batch:
            yield batch


def holdout_task(
    data: WorkloadDataset,
    *,
    metric: str = "ipc",
    support_size: int = 10,
    query_size: Optional[int] = None,
    seed: SeedLike = 0,
) -> Task:
    """Build a single adaptation task with a *disjoint* support and query set.

    Used for downstream evaluation: the support set plays the role of the
    ``K`` simulated samples available on the target workload, and the query
    set (by default, every remaining point) is the unseen evaluation data.
    """
    rng = as_rng(seed)
    if support_size >= len(data):
        raise ValueError(
            f"support_size {support_size} must be < dataset size {len(data)}"
        )
    order = rng.permutation(len(data))
    support_idx = order[:support_size]
    remaining = order[support_size:]
    if query_size is not None:
        remaining = remaining[:query_size]
    labels = data.metric(metric)
    return Task(
        workload=data.workload,
        metric=metric,
        support_x=data.features[support_idx],
        support_y=labels[support_idx],
        query_x=data.features[remaining],
        query_y=labels[remaining],
    )
