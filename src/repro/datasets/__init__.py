"""Dataset layer: generation, splits, episodic tasks and similarity analysis."""

from repro.datasets.generation import (
    METRICS,
    DSEDataset,
    WorkloadDataset,
    generate_dataset,
)
from repro.datasets.io import load_dataset, save_dataset
from repro.datasets.similarity import (
    SimilarityMatrix,
    select_similar_sources,
    similarity_matrix,
    standardized_wasserstein,
)
from repro.datasets.splits import (
    PAPER_SPLIT_SIZES,
    WorkloadSplit,
    paper_split,
    random_split,
    rotating_splits,
)
from repro.datasets.tasks import (
    DEFAULT_QUERY_SIZE,
    DEFAULT_SUPPORT_SIZE,
    Task,
    TaskSampler,
    holdout_task,
)

__all__ = [
    "METRICS",
    "WorkloadDataset",
    "DSEDataset",
    "generate_dataset",
    "save_dataset",
    "load_dataset",
    "WorkloadSplit",
    "PAPER_SPLIT_SIZES",
    "random_split",
    "paper_split",
    "rotating_splits",
    "Task",
    "TaskSampler",
    "holdout_task",
    "DEFAULT_SUPPORT_SIZE",
    "DEFAULT_QUERY_SIZE",
    "SimilarityMatrix",
    "similarity_matrix",
    "standardized_wasserstein",
    "select_similar_sources",
]
