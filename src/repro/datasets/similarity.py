"""Workload-similarity analysis (Fig. 2 of the paper).

The paper motivates MetaDSE by showing that SPEC CPU 2017 workloads are often
*dissimilar*: the Wasserstein distance between the metric distributions
(IPC, power) of two workloads over the same set of design points is large for
many pairs.  TrEnDSE also uses this distance to pick "similar" source
workloads, so the same code serves both the motivation figure and the
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.stats import wasserstein_distance

from repro.datasets.generation import DSEDataset


@dataclass(frozen=True)
class SimilarityMatrix:
    """A symmetric matrix of pairwise workload distances."""

    workloads: tuple[str, ...]
    metric: str
    distances: np.ndarray
    normalized: bool

    def __post_init__(self) -> None:
        n = len(self.workloads)
        if self.distances.shape != (n, n):
            raise ValueError(
                f"distance matrix shape {self.distances.shape} does not match "
                f"{n} workloads"
            )

    def distance(self, a: str, b: str) -> float:
        """Distance between two named workloads."""
        i = self.workloads.index(a)
        j = self.workloads.index(b)
        return float(self.distances[i, j])

    def most_similar(self, workload: str, *, count: int = 1) -> list[str]:
        """The *count* nearest workloads to *workload* (excluding itself)."""
        i = self.workloads.index(workload)
        order = np.argsort(self.distances[i])
        nearest = [self.workloads[int(j)] for j in order if int(j) != i]
        return nearest[:count]

    def mean_offdiagonal(self) -> float:
        """Average pairwise distance (a scalar summary of dissimilarity)."""
        n = len(self.workloads)
        mask = ~np.eye(n, dtype=bool)
        return float(self.distances[mask].mean())

    def to_rows(self) -> list[dict[str, float]]:
        """Row-oriented export used by the Fig. 2 benchmark report."""
        rows = []
        for i, a in enumerate(self.workloads):
            row: dict[str, float] = {"workload": a}  # type: ignore[dict-item]
            for j, b in enumerate(self.workloads):
                row[b] = float(self.distances[i, j])
            rows.append(row)
        return rows


def standardized_wasserstein(a: np.ndarray, b: np.ndarray) -> float:
    """Wasserstein-1 distance between two samples after joint standardisation.

    Standardising by the pooled mean/std makes distances comparable across
    metrics with different physical units (IPC vs Watts), matching the
    paper's use of a common [0, 1] colour scale for both heatmaps.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    pooled = np.concatenate([a, b])
    scale = pooled.std()
    if scale < 1e-12:
        return 0.0
    mean = pooled.mean()
    return float(wasserstein_distance((a - mean) / scale, (b - mean) / scale))


def similarity_matrix(
    dataset: DSEDataset,
    *,
    metric: str = "ipc",
    workloads: Optional[Sequence[str]] = None,
    normalize: bool = True,
) -> SimilarityMatrix:
    """Compute the pairwise Wasserstein distance matrix of Fig. 2.

    With ``normalize=True`` the matrix is rescaled so its maximum
    off-diagonal entry equals one (the paper's colour bars span [0, 1]).
    """
    names = tuple(workloads) if workloads is not None else tuple(dataset.workloads)
    samples = [dataset[name].metric(metric) for name in names]
    n = len(names)
    distances = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            d = standardized_wasserstein(samples[i], samples[j])
            distances[i, j] = d
            distances[j, i] = d
    if normalize and distances.max() > 0:
        distances = distances / distances.max()
    return SimilarityMatrix(
        workloads=names, metric=metric, distances=distances, normalized=normalize
    )


def select_similar_sources(
    dataset: DSEDataset,
    target_support_labels: np.ndarray,
    *,
    source_workloads: Sequence[str],
    metric: str = "ipc",
    top_k: int = 3,
) -> list[str]:
    """Rank source workloads by similarity to a target's few labelled samples.

    This is the TrEnDSE-style selection step: the Wasserstein distance is
    measured between the target's (few) support labels and each source
    workload's label distribution, and the *top_k* most similar sources are
    returned.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    distances = []
    for name in source_workloads:
        source_labels = dataset[name].metric(metric)
        distances.append((standardized_wasserstein(target_support_labels, source_labels), name))
    distances.sort(key=lambda pair: pair[0])
    return [name for _, name in distances[:top_k]]
