"""Workload layer: synthetic SPEC CPU 2017 profiles and SimPoint phases."""

from repro.workloads.characteristics import (
    INSTRUCTION_CLASSES,
    BranchBehavior,
    InstructionMix,
    MemoryBehavior,
    WorkloadProfile,
)
from repro.workloads.simpoints import (
    INSTRUCTIONS_PER_CLUSTER,
    MAX_SIMPOINT_CLUSTERS,
    SimPoint,
    SimPointSet,
    generate_simpoints,
)
from repro.workloads.spec2017 import (
    SPEC2017_WORKLOAD_NAMES,
    TABLE2_TEST_WORKLOADS,
    WorkloadSuite,
    build_spec2017_profiles,
    spec2017_suite,
)

__all__ = [
    "INSTRUCTION_CLASSES",
    "InstructionMix",
    "BranchBehavior",
    "MemoryBehavior",
    "WorkloadProfile",
    "SimPoint",
    "SimPointSet",
    "generate_simpoints",
    "MAX_SIMPOINT_CLUSTERS",
    "INSTRUCTIONS_PER_CLUSTER",
    "SPEC2017_WORKLOAD_NAMES",
    "TABLE2_TEST_WORKLOADS",
    "WorkloadSuite",
    "build_spec2017_profiles",
    "spec2017_suite",
]
