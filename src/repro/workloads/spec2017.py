"""Synthetic profiles for the 17 SPEC CPU 2017_speed workloads of the paper.

The actual SPEC binaries (and the gem5 SimPoint traces derived from them)
are not available offline, so each workload is represented by a
:class:`~repro.workloads.characteristics.WorkloadProfile` whose numbers are
chosen to mirror the well-known qualitative behaviour of the benchmark:
``mcf`` and ``omnetpp`` are memory-latency bound with poor locality,
``exchange2`` is branchy integer code that lives in the L1, ``fotonik3d`` /
``roms`` / ``cactuBSSN`` are bandwidth-hungry FP stencils, ``leela`` and
``xalancbmk`` are pointer-chasing integer codes, and the two ``specrand``
kernels are tiny and nearly architecture-insensitive.

What matters for the reproduction is not the absolute fidelity of any single
profile but that the 17 profiles span compute-bound vs memory-bound,
predictable vs branchy, and integer vs floating-point behaviour, so that the
cross-workload transfer problem has the same structure as in the paper
(including the workload-dissimilarity shown in Fig. 2).
"""

from __future__ import annotations

from repro.workloads.characteristics import (
    BranchBehavior,
    InstructionMix,
    MemoryBehavior,
    WorkloadProfile,
)

#: The workload names exactly as they appear in the paper's figures.
SPEC2017_WORKLOAD_NAMES = (
    "600.perlbench_s",
    "602.gcc_s",
    "605.mcf_s",
    "607.cactuBSSN_s",
    "620.omnetpp_s",
    "621.wrf_s",
    "623.xalancbmk_s",
    "625.x264_s",
    "627.cam4_s",
    "638.imagick_s",
    "641.leela_s",
    "644.nab_s",
    "648.exchange2_s",
    "649.fotonik3d_s",
    "654.roms_s",
    "996.specrand_fs",
    "998.specrand_is",
)

#: The 5 held-out test workloads used for Table II of the paper.
TABLE2_TEST_WORKLOADS = (
    "600.perlbench_s",
    "605.mcf_s",
    "620.omnetpp_s",
    "623.xalancbmk_s",
    "627.cam4_s",
)


def _profile(
    name: str,
    category: str,
    mix: dict[str, float],
    *,
    bimode: float,
    tournament: float,
    call_depth: float,
    targets: int,
    l1_ws: float,
    l2_ws: float,
    mlp: float,
    locality: float,
    irregularity: float,
    ideal_ipc: float,
    dep_chain: float,
    mem_bound: float,
    activity: float,
) -> WorkloadProfile:
    """Terse constructor keeping the table below readable."""
    return WorkloadProfile(
        name=name,
        category=category,
        mix=InstructionMix.from_dict(mix),
        branch=BranchBehavior(
            bimode_mispredict_rate=bimode,
            tournament_mispredict_rate=tournament,
            call_depth=call_depth,
            branch_target_footprint=targets,
        ),
        memory=MemoryBehavior(
            l1_working_set_kb=l1_ws,
            l2_working_set_kb=l2_ws,
            mlp=mlp,
            spatial_locality=locality,
            access_irregularity=irregularity,
        ),
        ideal_ipc=ideal_ipc,
        dependency_chain_length=dep_chain,
        memory_boundedness=mem_bound,
        activity_factor=activity,
    )


def build_spec2017_profiles() -> dict[str, WorkloadProfile]:
    """Build the 17 named workload profiles."""
    profiles = [
        _profile(
            "600.perlbench_s", "int",
            dict(int_alu=0.46, int_muldiv=0.02, fp_alu=0.01, fp_muldiv=0.0,
                 load=0.26, store=0.11, branch=0.14),
            bimode=0.055, tournament=0.032, call_depth=14, targets=4200,
            l1_ws=48, l2_ws=900, mlp=1.8, locality=0.62, irregularity=0.35,
            ideal_ipc=3.4, dep_chain=4.2, mem_bound=0.35, activity=0.55,
        ),
        _profile(
            "602.gcc_s", "int",
            dict(int_alu=0.44, int_muldiv=0.015, fp_alu=0.005, fp_muldiv=0.0,
                 load=0.28, store=0.12, branch=0.14),
            bimode=0.07, tournament=0.042, call_depth=18, targets=6400,
            l1_ws=72, l2_ws=2600, mlp=2.0, locality=0.55, irregularity=0.45,
            ideal_ipc=3.0, dep_chain=4.8, mem_bound=0.45, activity=0.52,
        ),
        _profile(
            "605.mcf_s", "int",
            dict(int_alu=0.38, int_muldiv=0.01, fp_alu=0.0, fp_muldiv=0.0,
                 load=0.37, store=0.08, branch=0.16),
            bimode=0.09, tournament=0.065, call_depth=6, targets=900,
            l1_ws=420, l2_ws=24000, mlp=6.0, locality=0.18, irregularity=0.85,
            ideal_ipc=2.1, dep_chain=6.5, mem_bound=0.92, activity=0.42,
        ),
        _profile(
            "607.cactuBSSN_s", "fp",
            dict(int_alu=0.18, int_muldiv=0.01, fp_alu=0.33, fp_muldiv=0.12,
                 load=0.25, store=0.09, branch=0.02),
            bimode=0.012, tournament=0.007, call_depth=8, targets=700,
            l1_ws=180, l2_ws=9000, mlp=4.5, locality=0.82, irregularity=0.2,
            ideal_ipc=4.2, dep_chain=5.5, mem_bound=0.62, activity=0.72,
        ),
        _profile(
            "620.omnetpp_s", "int",
            dict(int_alu=0.40, int_muldiv=0.01, fp_alu=0.01, fp_muldiv=0.0,
                 load=0.31, store=0.12, branch=0.15),
            bimode=0.075, tournament=0.05, call_depth=22, targets=5200,
            l1_ws=260, l2_ws=16000, mlp=2.4, locality=0.25, irregularity=0.8,
            ideal_ipc=2.3, dep_chain=6.0, mem_bound=0.8, activity=0.45,
        ),
        _profile(
            "621.wrf_s", "fp",
            dict(int_alu=0.2, int_muldiv=0.01, fp_alu=0.3, fp_muldiv=0.09,
                 load=0.27, store=0.09, branch=0.04),
            bimode=0.02, tournament=0.011, call_depth=10, targets=1800,
            l1_ws=120, l2_ws=5200, mlp=3.2, locality=0.75, irregularity=0.25,
            ideal_ipc=3.8, dep_chain=5.0, mem_bound=0.55, activity=0.68,
        ),
        _profile(
            "623.xalancbmk_s", "int",
            dict(int_alu=0.43, int_muldiv=0.01, fp_alu=0.0, fp_muldiv=0.0,
                 load=0.29, store=0.1, branch=0.17),
            bimode=0.065, tournament=0.038, call_depth=26, targets=7600,
            l1_ws=96, l2_ws=3800, mlp=1.7, locality=0.4, irregularity=0.6,
            ideal_ipc=2.8, dep_chain=5.2, mem_bound=0.6, activity=0.5,
        ),
        _profile(
            "625.x264_s", "int",
            dict(int_alu=0.5, int_muldiv=0.03, fp_alu=0.02, fp_muldiv=0.0,
                 load=0.26, store=0.11, branch=0.08),
            bimode=0.035, tournament=0.02, call_depth=9, targets=2100,
            l1_ws=40, l2_ws=1400, mlp=2.6, locality=0.85, irregularity=0.15,
            ideal_ipc=4.6, dep_chain=3.4, mem_bound=0.3, activity=0.75,
        ),
        _profile(
            "627.cam4_s", "fp",
            dict(int_alu=0.22, int_muldiv=0.01, fp_alu=0.28, fp_muldiv=0.08,
                 load=0.28, store=0.09, branch=0.04),
            bimode=0.025, tournament=0.014, call_depth=12, targets=2600,
            l1_ws=150, l2_ws=7000, mlp=2.8, locality=0.7, irregularity=0.3,
            ideal_ipc=3.6, dep_chain=5.4, mem_bound=0.58, activity=0.65,
        ),
        _profile(
            "638.imagick_s", "fp",
            dict(int_alu=0.24, int_muldiv=0.02, fp_alu=0.34, fp_muldiv=0.1,
                 load=0.2, store=0.06, branch=0.04),
            bimode=0.018, tournament=0.01, call_depth=7, targets=900,
            l1_ws=28, l2_ws=700, mlp=2.2, locality=0.9, irregularity=0.1,
            ideal_ipc=5.0, dep_chain=3.8, mem_bound=0.18, activity=0.82,
        ),
        _profile(
            "641.leela_s", "int",
            dict(int_alu=0.47, int_muldiv=0.02, fp_alu=0.02, fp_muldiv=0.0,
                 load=0.25, store=0.09, branch=0.15),
            bimode=0.08, tournament=0.055, call_depth=20, targets=3400,
            l1_ws=36, l2_ws=1100, mlp=1.5, locality=0.5, irregularity=0.5,
            ideal_ipc=2.6, dep_chain=5.8, mem_bound=0.28, activity=0.5,
        ),
        _profile(
            "644.nab_s", "fp",
            dict(int_alu=0.23, int_muldiv=0.01, fp_alu=0.35, fp_muldiv=0.11,
                 load=0.21, store=0.06, branch=0.03),
            bimode=0.016, tournament=0.009, call_depth=8, targets=800,
            l1_ws=44, l2_ws=1600, mlp=2.4, locality=0.8, irregularity=0.15,
            ideal_ipc=4.4, dep_chain=4.6, mem_bound=0.3, activity=0.78,
        ),
        _profile(
            "648.exchange2_s", "int",
            dict(int_alu=0.56, int_muldiv=0.02, fp_alu=0.0, fp_muldiv=0.0,
                 load=0.2, store=0.08, branch=0.14),
            bimode=0.045, tournament=0.02, call_depth=30, targets=1600,
            l1_ws=12, l2_ws=180, mlp=1.4, locality=0.88, irregularity=0.08,
            ideal_ipc=4.8, dep_chain=3.6, mem_bound=0.08, activity=0.7,
        ),
        _profile(
            "649.fotonik3d_s", "fp",
            dict(int_alu=0.16, int_muldiv=0.01, fp_alu=0.31, fp_muldiv=0.07,
                 load=0.33, store=0.1, branch=0.02),
            bimode=0.008, tournament=0.005, call_depth=5, targets=400,
            l1_ws=380, l2_ws=30000, mlp=5.5, locality=0.92, irregularity=0.12,
            ideal_ipc=3.9, dep_chain=4.4, mem_bound=0.85, activity=0.6,
        ),
        _profile(
            "654.roms_s", "fp",
            dict(int_alu=0.18, int_muldiv=0.01, fp_alu=0.3, fp_muldiv=0.08,
                 load=0.31, store=0.1, branch=0.02),
            bimode=0.01, tournament=0.006, call_depth=6, targets=600,
            l1_ws=300, l2_ws=22000, mlp=4.8, locality=0.88, irregularity=0.15,
            ideal_ipc=3.7, dep_chain=4.8, mem_bound=0.78, activity=0.62,
        ),
        _profile(
            "996.specrand_fs", "rand",
            dict(int_alu=0.3, int_muldiv=0.05, fp_alu=0.3, fp_muldiv=0.05,
                 load=0.15, store=0.05, branch=0.1),
            bimode=0.03, tournament=0.02, call_depth=3, targets=60,
            l1_ws=2, l2_ws=16, mlp=1.2, locality=0.95, irregularity=0.05,
            ideal_ipc=3.2, dep_chain=6.2, mem_bound=0.03, activity=0.58,
        ),
        _profile(
            "998.specrand_is", "rand",
            dict(int_alu=0.45, int_muldiv=0.08, fp_alu=0.0, fp_muldiv=0.0,
                 load=0.2, store=0.1, branch=0.17),
            bimode=0.04, tournament=0.028, call_depth=3, targets=50,
            l1_ws=2, l2_ws=12, mlp=1.2, locality=0.95, irregularity=0.05,
            ideal_ipc=2.9, dep_chain=5.6, mem_bound=0.03, activity=0.5,
        ),
    ]
    by_name = {p.name: p for p in profiles}
    missing = set(SPEC2017_WORKLOAD_NAMES) - set(by_name)
    if missing:
        raise RuntimeError(f"profile table is missing workloads: {sorted(missing)}")
    return {name: by_name[name] for name in SPEC2017_WORKLOAD_NAMES}


class WorkloadSuite:
    """A named collection of workload profiles with convenient lookups."""

    def __init__(self, profiles: dict[str, WorkloadProfile], *, name: str = "suite") -> None:
        if not profiles:
            raise ValueError("a workload suite needs at least one profile")
        self._profiles = dict(profiles)
        self.name = name

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self):
        return iter(self._profiles.values())

    def __contains__(self, name: str) -> bool:
        return name in self._profiles

    def __getitem__(self, name: str) -> WorkloadProfile:
        try:
            return self._profiles[name]
        except KeyError:
            raise KeyError(
                f"unknown workload {name!r}; known workloads: {sorted(self._profiles)}"
            ) from None

    @property
    def names(self) -> list[str]:
        """Workload names in suite order."""
        return list(self._profiles)

    def subset(self, names) -> "WorkloadSuite":
        """Return a sub-suite containing only *names* (order preserved)."""
        return WorkloadSuite({n: self[n] for n in names}, name=f"{self.name}-subset")

    def by_category(self, category: str) -> "WorkloadSuite":
        """Return the sub-suite of workloads tagged with *category*."""
        selected = {n: p for n, p in self._profiles.items() if p.category == category}
        if not selected:
            raise KeyError(f"no workloads with category {category!r}")
        return WorkloadSuite(selected, name=f"{self.name}-{category}")


def spec2017_suite() -> WorkloadSuite:
    """The full 17-workload SPEC CPU 2017_speed suite used by every experiment."""
    return WorkloadSuite(build_spec2017_profiles(), name="spec-cpu-2017-speed")
