"""Workload characterisation used by the analytical CPU model.

The gem5 + SPEC CPU 2017 pipeline of the paper is replaced by synthetic
workload profiles.  A :class:`WorkloadProfile` captures the program-level
quantities an analytical out-of-order performance model needs:

* instruction mix (integer ALU / integer mul-div / FP ALU / FP mul-div /
  loads / stores / branches),
* exploitable instruction-level parallelism (the IPC the program could reach
  on an ideal machine),
* branch behaviour (misprediction rates under the two predictor types of
  Table I, and return-stack pressure),
* memory behaviour (working-set sizes for L1/L2, memory-level parallelism,
  cache-line spatial locality),
* a frequency-scaling exponent describing how memory-bound the program is.

Profiles are deliberately diverse so that cross-workload transfer is hard in
the same way Fig. 2 of the paper shows it to be for real SPEC workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.utils.validation import check_in_range, check_positive

#: Canonical order of instruction classes in a mix vector.
INSTRUCTION_CLASSES = (
    "int_alu",
    "int_muldiv",
    "fp_alu",
    "fp_muldiv",
    "load",
    "store",
    "branch",
)


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of dynamic instructions per class (must sum to 1)."""

    int_alu: float
    int_muldiv: float
    fp_alu: float
    fp_muldiv: float
    load: float
    store: float
    branch: float

    def __post_init__(self) -> None:
        total = sum(self.as_dict().values())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"instruction mix must sum to 1.0, got {total:.6f}")
        for name, value in self.as_dict().items():
            check_in_range(f"instruction mix fraction {name!r}", value, 0.0, 1.0)

    def as_dict(self) -> dict[str, float]:
        """Return the mix as an ordered mapping (class name -> fraction)."""
        return {name: getattr(self, name) for name in INSTRUCTION_CLASSES}

    def as_array(self) -> np.ndarray:
        """Return the mix as a vector ordered by :data:`INSTRUCTION_CLASSES`."""
        return np.array([getattr(self, name) for name in INSTRUCTION_CLASSES])

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that access memory."""
        return self.load + self.store

    @property
    def fp_fraction(self) -> float:
        """Fraction of floating-point instructions."""
        return self.fp_alu + self.fp_muldiv

    @staticmethod
    def from_dict(values: Mapping[str, float]) -> "InstructionMix":
        """Build a mix from a mapping, normalising so the fractions sum to 1."""
        raw = np.array([float(values.get(name, 0.0)) for name in INSTRUCTION_CLASSES])
        if raw.sum() <= 0:
            raise ValueError("instruction mix must have a positive total")
        normalised = raw / raw.sum()
        return InstructionMix(*normalised.tolist())


@dataclass(frozen=True)
class BranchBehavior:
    """Branch-prediction related characteristics of a workload."""

    #: Misprediction rate with the simpler BiMode predictor.
    bimode_mispredict_rate: float
    #: Misprediction rate with the Tournament predictor (usually lower).
    tournament_mispredict_rate: float
    #: Average call depth — drives sensitivity to the return-address stack size.
    call_depth: float
    #: Number of distinct branch targets (drives BTB pressure).
    branch_target_footprint: int

    def __post_init__(self) -> None:
        check_in_range("bimode_mispredict_rate", self.bimode_mispredict_rate, 0.0, 0.5)
        check_in_range("tournament_mispredict_rate", self.tournament_mispredict_rate, 0.0, 0.5)
        check_positive("call_depth", self.call_depth)
        check_positive("branch_target_footprint", self.branch_target_footprint)

    def mispredict_rate(self, predictor: str) -> float:
        """Misprediction rate under the named predictor type."""
        if predictor == "BiModeBP":
            return self.bimode_mispredict_rate
        if predictor == "TournamentBP":
            return self.tournament_mispredict_rate
        raise ValueError(f"unknown branch predictor {predictor!r}")


@dataclass(frozen=True)
class MemoryBehavior:
    """Memory-hierarchy related characteristics of a workload."""

    #: Working-set size (KB) that must fit in L1 for a low L1 miss rate.
    l1_working_set_kb: float
    #: Working-set size (KB) that must fit in L2 for a low L2 miss rate.
    l2_working_set_kb: float
    #: Memory-level parallelism: average number of overlapping misses.
    mlp: float
    #: Spatial locality in [0, 1]; high values benefit from 64B cache lines.
    spatial_locality: float
    #: Fraction of accesses that are effectively random (conflict-prone).
    access_irregularity: float

    def __post_init__(self) -> None:
        check_positive("l1_working_set_kb", self.l1_working_set_kb)
        check_positive("l2_working_set_kb", self.l2_working_set_kb)
        check_positive("mlp", self.mlp)
        check_in_range("spatial_locality", self.spatial_locality, 0.0, 1.0)
        check_in_range("access_irregularity", self.access_irregularity, 0.0, 1.0)


@dataclass(frozen=True)
class WorkloadProfile:
    """The full characterisation of one workload (or one SimPoint phase)."""

    name: str
    mix: InstructionMix
    branch: BranchBehavior
    memory: MemoryBehavior
    #: IPC the program could sustain on an ideal (infinitely wide) machine.
    ideal_ipc: float
    #: Average dependency-chain length in instructions; limits ROB usefulness.
    dependency_chain_length: float
    #: Sensitivity of memory latency (in core cycles) to core frequency; a
    #: fully memory-bound program (1.0) sees miss penalties scale linearly
    #: with frequency, a compute-bound one (0.0) is frequency-neutral.
    memory_boundedness: float
    #: Dynamic switching activity factor used by the power model.
    activity_factor: float = 0.5
    #: Arbitrary grouping tag (``int`` / ``fp`` / ``rand``) used in reports.
    category: str = "int"
    #: Optional phase weights when the profile is an aggregate of SimPoints.
    phase_weights: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        check_positive("ideal_ipc", self.ideal_ipc)
        check_positive("dependency_chain_length", self.dependency_chain_length)
        check_in_range("memory_boundedness", self.memory_boundedness, 0.0, 1.0)
        check_in_range("activity_factor", self.activity_factor, 0.0, 1.0)

    def with_name(self, name: str) -> "WorkloadProfile":
        """Return a copy of the profile under a different name."""
        return replace(self, name=name)

    def perturbed(self, rng: np.random.Generator, scale: float = 0.05) -> "WorkloadProfile":
        """Return a slightly perturbed copy (used to synthesise SimPoint phases).

        Multiplicative log-normal noise is applied to the continuous scalar
        characteristics; the instruction mix is jittered with a Dirichlet
        re-draw centred on the original mix.
        """
        def jitter(value: float, lo: float = 1e-6, hi: float = np.inf) -> float:
            factor = float(np.exp(rng.normal(0.0, scale)))
            return float(np.clip(value * factor, lo, hi))

        mix_concentration = self.mix.as_array() * (1.0 / max(scale, 1e-3))
        mix_concentration = np.maximum(mix_concentration, 1e-3)
        new_mix = InstructionMix.from_dict(
            dict(zip(INSTRUCTION_CLASSES, rng.dirichlet(mix_concentration)))
        )
        new_branch = BranchBehavior(
            bimode_mispredict_rate=float(np.clip(jitter(self.branch.bimode_mispredict_rate), 1e-4, 0.5)),
            tournament_mispredict_rate=float(
                np.clip(jitter(self.branch.tournament_mispredict_rate), 1e-4, 0.5)
            ),
            call_depth=jitter(self.branch.call_depth, lo=1.0),
            branch_target_footprint=int(max(16, jitter(self.branch.branch_target_footprint))),
        )
        new_memory = MemoryBehavior(
            l1_working_set_kb=jitter(self.memory.l1_working_set_kb, lo=0.5),
            l2_working_set_kb=jitter(self.memory.l2_working_set_kb, lo=1.0),
            mlp=jitter(self.memory.mlp, lo=1.0, hi=16.0),
            spatial_locality=float(np.clip(jitter(self.memory.spatial_locality), 0.0, 1.0)),
            access_irregularity=float(np.clip(jitter(self.memory.access_irregularity), 0.0, 1.0)),
        )
        return replace(
            self,
            mix=new_mix,
            branch=new_branch,
            memory=new_memory,
            ideal_ipc=jitter(self.ideal_ipc, lo=0.3, hi=12.0),
            dependency_chain_length=jitter(self.dependency_chain_length, lo=1.0),
            memory_boundedness=float(np.clip(jitter(self.memory_boundedness), 0.0, 1.0)),
            activity_factor=float(np.clip(jitter(self.activity_factor), 0.05, 1.0)),
        )

    def summary(self) -> dict[str, float]:
        """A flat numeric summary used for workload-signature baselines."""
        return {
            "ideal_ipc": self.ideal_ipc,
            "dependency_chain_length": self.dependency_chain_length,
            "memory_boundedness": self.memory_boundedness,
            "memory_fraction": self.mix.memory_fraction,
            "fp_fraction": self.mix.fp_fraction,
            "branch_fraction": self.mix.branch,
            "bimode_mispredict_rate": self.branch.bimode_mispredict_rate,
            "tournament_mispredict_rate": self.branch.tournament_mispredict_rate,
            "l1_working_set_kb": self.memory.l1_working_set_kb,
            "l2_working_set_kb": self.memory.l2_working_set_kb,
            "mlp": self.memory.mlp,
            "spatial_locality": self.memory.spatial_locality,
            "activity_factor": self.activity_factor,
        }
