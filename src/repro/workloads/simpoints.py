"""SimPoint-style phase decomposition of a workload.

The paper evaluates each SPEC workload through SimPoint sampling: up to 30
representative clusters of ten million instructions each, with weights that
say how much of the whole program each cluster represents.  The synthetic
equivalent here decomposes a :class:`WorkloadProfile` into a weighted set of
perturbed phase profiles.  The simulator then reports the weighted average of
the per-phase results, which is exactly how gem5 + SimPoint results are
aggregated in practice.

Having phases also injects realistic *heteroscedastic* structure: workloads
with many dissimilar phases are harder to predict, mirroring the ambiguity
the paper highlights in Section III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.workloads.characteristics import WorkloadProfile

#: Paper setting: each workload is divided into at most 30 clusters.
MAX_SIMPOINT_CLUSTERS = 30

#: Paper setting: each cluster represents ten million instructions.
INSTRUCTIONS_PER_CLUSTER = 10_000_000


@dataclass(frozen=True)
class SimPoint:
    """A single representative phase of a workload."""

    index: int
    weight: float
    profile: WorkloadProfile
    instructions: int = INSTRUCTIONS_PER_CLUSTER


@dataclass(frozen=True)
class SimPointSet:
    """The SimPoint decomposition of one workload."""

    workload_name: str
    points: tuple[SimPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a SimPoint set needs at least one point")
        total = sum(p.weight for p in self.points)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"SimPoint weights must sum to 1.0, got {total:.6f}")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def weights(self) -> np.ndarray:
        """Phase weights as an array (sums to one)."""
        return np.array([p.weight for p in self.points])

    @property
    def total_instructions(self) -> int:
        """Total instructions represented by the decomposition."""
        return sum(p.instructions for p in self.points)

    def weighted_average(self, per_phase_values: np.ndarray) -> float:
        """Aggregate per-phase metrics with the SimPoint weights."""
        values = np.asarray(per_phase_values, dtype=np.float64)
        if values.shape[0] != len(self.points):
            raise ValueError(
                f"expected {len(self.points)} per-phase values, got {values.shape[0]}"
            )
        return float(np.dot(self.weights, values))


def generate_simpoints(
    profile: WorkloadProfile,
    *,
    max_clusters: int = MAX_SIMPOINT_CLUSTERS,
    phase_diversity: float = 0.08,
    seed: SeedLike = None,
) -> SimPointSet:
    """Decompose *profile* into a weighted set of perturbed phase profiles.

    Parameters
    ----------
    profile:
        The aggregate workload profile.
    max_clusters:
        Upper bound on the number of phases; the actual count is drawn
        between 4 and *max_clusters* with irregular workloads getting more
        phases (pointer-chasing codes show more phase behaviour in practice).
    phase_diversity:
        Scale of the per-phase perturbation.  Zero yields identical phases.
    seed:
        Determinism handle; the same seed always yields the same phases.
    """
    if max_clusters < 1:
        raise ValueError(f"max_clusters must be >= 1, got {max_clusters}")
    rng = as_rng(seed)
    irregularity = profile.memory.access_irregularity
    low = min(4, max_clusters)
    high = max(low, int(round(max_clusters * (0.4 + 0.6 * irregularity))))
    count = int(rng.integers(low, high + 1))
    weights = rng.dirichlet(np.full(count, 2.0))
    points = tuple(
        SimPoint(
            index=i,
            weight=float(w),
            profile=profile.perturbed(rng, scale=phase_diversity).with_name(
                f"{profile.name}#sp{i}"
            ),
        )
        for i, w in enumerate(weights)
    )
    return SimPointSet(workload_name=profile.name, points=points)
