"""MetaDSE reproduction: few-shot meta-learning for cross-workload CPU DSE.

The package is organised bottom-up:

* :mod:`repro.designspace` -- the Table I out-of-order CPU design space;
* :mod:`repro.workloads` -- synthetic SPEC CPU 2017 workload profiles;
* :mod:`repro.sim` -- analytical performance/power simulator (gem5 + McPAT
  substitute);
* :mod:`repro.datasets` -- labelled dataset generation, ``.npz`` persistence,
  splits, episodic tasks and workload-similarity analysis;
* :mod:`repro.stats` -- k-means, Gaussian mixtures and distributional
  features backing the transfer baselines;
* :mod:`repro.nn` -- numpy autograd, transformer predictor, optimisers,
  gradient checking;
* :mod:`repro.meta` -- MAML pre-training, WAM generation, adaptation, the
  ANIL / Meta-SGD / Reptile ablation variants;
* :mod:`repro.baselines` -- RF, GBRT, TrEnDSE, TrEnDSE-Transformer, TrDSE,
  TrEE, GMM augmentation, workload signatures, linear fitting;
* :mod:`repro.metrics` -- RMSE / MAPE / explained variance plus ranking
  quality (Spearman, Kendall, top-k recall, regret@k);
* :mod:`repro.dse` -- the unified DSE campaign engine (batched
  multi-objective surrogates, pluggable candidate generation and
  acquisition, cross-workload campaigns), the explorer strategy wrappers
  (screening, NSGA-II, active learning), constraints and
  Pareto/ADRS/hypervolume utilities;
* :mod:`repro.runtime` -- the parallel campaign runtime: DAG job
  scheduler, serial/thread/process executors, deterministic sharding and
  resumable campaign checkpoints;
* :mod:`repro.core` -- the :class:`~repro.core.metadse.MetaDSE` facade;
* :mod:`repro.cli` -- the ``python -m repro`` command-line interface.
"""

from repro.core import MetaDSE, MetaDSEConfig, default_config, paper_scale_config
from repro.datasets import generate_dataset
from repro.designspace import build_table1_space, default_design_space
from repro.sim import BatchSimulationResult, SimulationResult, Simulator
from repro.workloads import spec2017_suite

__version__ = "1.0.0"

__all__ = [
    "MetaDSE",
    "MetaDSEConfig",
    "default_config",
    "paper_scale_config",
    "Simulator",
    "SimulationResult",
    "BatchSimulationResult",
    "generate_dataset",
    "build_table1_space",
    "default_design_space",
    "spec2017_suite",
    "__version__",
]
