"""The MetaDSE framework facade.

This is the library's primary public entry point.  It wires together the
pieces of the paper's Fig. 3 workflow:

* **pre-training stage** (steps 1-9): episodic task sampling over the source
  workloads, MAML meta-training of the transformer surrogate with
  meta-validation, and WAM generation from the last layer's attention
  statistics;
* **adaptation stage** (steps ①-③): installing the (learnable) mask and
  fine-tuning a clone of the meta-trained predictor on the target workload's
  few labelled samples;
* prediction on unseen target configurations.

Labels are standardised internally using the *source* workloads' statistics
(the target's statistics are never touched, avoiding leakage); predictions
are returned in physical units.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Mapping, Optional, Sequence

import numpy as np

from repro import obs
from repro.baselines.base import CrossWorkloadModel, as_1d, as_2d
from repro.core.config import MetaDSEConfig, default_config
from repro.datasets.generation import DSEDataset, WorkloadDataset
from repro.datasets.splits import WorkloadSplit
from repro.datasets.tasks import TaskSampler
from repro.meta.adaptation import (
    AdaptationResult,
    adapt_predictor,
    adapt_predictor_batch,
)
from repro.meta.maml import MAMLTrainer, MetaTrainingHistory
from repro.meta.wam import ArchitecturalMask, generate_wam
from repro.nn import parallel as nn_parallel
from repro.nn.precision import resolve_dtype
from repro.nn.transformer import TransformerPredictor


@dataclass
class PretrainReport:
    """Summary of one pre-training run."""

    history: MetaTrainingHistory
    mask: Optional[ArchitecturalMask]
    train_workloads: tuple[str, ...]
    validation_workloads: tuple[str, ...]
    metric: str
    label_mean: float
    label_std: float


class MetaDSE(CrossWorkloadModel):
    """Few-shot meta-learning framework for cross-workload CPU DSE.

    Parameters
    ----------
    num_parameters:
        Number of architectural parameters (22 for the Table I space).
    config:
        Full configuration; :func:`repro.core.config.default_config` when
        omitted.
    use_wam:
        Convenience override of ``config.use_wam`` — ``use_wam=False`` gives
        the *MetaDSE-w/o WAM* ablation of Fig. 5.
    precision:
        Compute dtype of the surrogate: ``"float64"`` (the default policy,
        bit-identical to the reference paths) or ``"float32"`` (the fast
        path — meta-training, WAM harvesting and adaptation all run 32-bit;
        see ``docs/numerics.md`` for the accuracy contract).  Label
        statistics and returned predictions stay float64 either way.
    threads:
        Kernel worker threads for this facade's forward/backward passes:
        :meth:`explore` and :meth:`predict` run inside
        ``repro.nn.threads(threads)`` when set (``None`` keeps the ambient
        policy).  Results are bitwise identical for every thread count
        (``docs/kernels.md``).
    name:
        Display name used by the benchmark tables.
    """

    def __init__(
        self,
        num_parameters: int,
        *,
        config: Optional[MetaDSEConfig] = None,
        use_wam: Optional[bool] = None,
        precision: Optional[str] = None,
        threads: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if num_parameters < 1:
            raise ValueError("num_parameters must be >= 1")
        self.num_parameters = num_parameters
        #: Requested surrogate dtype; ``None`` defers to the engine policy.
        self.precision = None if precision is None else resolve_dtype(precision)
        if threads is not None and int(threads) < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        #: Kernel worker-thread count; ``None`` defers to the ambient policy.
        self.threads = None if threads is None else int(threads)
        self.config = config if config is not None else default_config()
        if use_wam is not None:
            self.config = replace(self.config, use_wam=use_wam)
        self.name = name if name is not None else (
            "MetaDSE" if self.config.use_wam else "MetaDSE-w/o WAM"
        )
        self.meta_model: Optional[TransformerPredictor] = None
        self.mask: Optional[ArchitecturalMask] = None
        self.adapted: Optional[TransformerPredictor] = None
        self.pretrain_report: Optional[PretrainReport] = None
        self.last_adaptation: Optional[AdaptationResult] = None
        self._metric = "ipc"
        self._label_mean = 0.0
        self._label_std = 1.0

    def _thread_scope(self):
        """Kernel-thread policy scope for this facade's compute entry points."""
        if self.threads is None:
            return nullcontext()
        return nn_parallel.threads(self.threads)

    # -- label scaling -------------------------------------------------------------
    def _fit_label_scaler(self, dataset: DSEDataset, workloads: Sequence[str], metric: str) -> None:
        if not self.config.standardize_labels:
            self._label_mean, self._label_std = 0.0, 1.0
            return
        labels = np.concatenate([dataset[w].metric(metric) for w in workloads])
        self._label_mean = float(labels.mean())
        self._label_std = float(max(labels.std(), 1e-8))

    def _scale(self, values: np.ndarray) -> np.ndarray:
        return (np.asarray(values, dtype=np.float64) - self._label_mean) / self._label_std

    def _unscale(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64) * self._label_std + self._label_mean

    def _scaled_dataset(self, dataset: DSEDataset, workloads: Sequence[str], metric: str) -> DSEDataset:
        """Copy of the relevant workloads with the metric standardised."""
        per_workload = {}
        for name in workloads:
            data = dataset[name]
            per_workload[name] = WorkloadDataset(
                workload=name,
                features=data.features,
                labels={metric: self._scale(data.metric(metric))},
                configs=data.configs,
            )
        return DSEDataset(space=dataset.space, per_workload=per_workload)

    # -- pre-training stage ------------------------------------------------------------
    def pretrain(
        self, dataset: DSEDataset, split: WorkloadSplit, *, metric: str = "ipc"
    ) -> "MetaDSE":
        """Run the MAML pre-training stage (and WAM generation) on source workloads."""
        self._metric = metric
        source_workloads = list(split.train) + list(split.validation)
        self._fit_label_scaler(dataset, source_workloads, metric)
        scaled = self._scaled_dataset(dataset, source_workloads, metric)

        predictor_cfg = self.config.predictor
        self.meta_model = TransformerPredictor(
            self.num_parameters,
            embed_dim=predictor_cfg.embed_dim,
            num_heads=predictor_cfg.num_heads,
            num_layers=predictor_cfg.num_layers,
            head_hidden=predictor_cfg.head_hidden,
            dropout=predictor_cfg.dropout,
            seed=self.config.seed,
        )
        if self.precision is not None:
            # Initialise in float64 (dtype-independent random stream), then
            # convert: the float32 model is the rounding of the float64 one.
            self.meta_model.to_dtype(self.precision)
        sampler = TaskSampler(
            scaled,
            metric=metric,
            support_size=self.config.maml.support_size,
            query_size=self.config.maml.query_size,
            seed=self.config.seed,
        )
        trainer = MAMLTrainer(self.meta_model, self.config.maml)
        history = trainer.meta_train(
            sampler,
            list(split.train),
            list(split.validation) if split.validation else None,
        )

        self.mask = None
        if self.config.use_wam:
            self.mask = generate_wam(
                self.meta_model,
                sampler,
                source_workloads,
                config=self.config.wam,
            )

        self.pretrain_report = PretrainReport(
            history=history,
            mask=self.mask,
            train_workloads=tuple(split.train),
            validation_workloads=tuple(split.validation),
            metric=metric,
            label_mean=self._label_mean,
            label_std=self._label_std,
        )
        self.adapted = None
        return self

    # -- adaptation stage ------------------------------------------------------------
    def adapt(self, support_x: np.ndarray, support_y: np.ndarray) -> "MetaDSE":
        """Adapt the meta-trained predictor to a target workload (Algorithm 2)."""
        if self.meta_model is None:
            raise RuntimeError("adapt() called before pretrain()")
        support_x = as_2d(support_x)
        support_y = self._scale(as_1d(support_y, support_x.shape[0]))
        result = adapt_predictor(
            self.meta_model,
            support_x,
            support_y,
            mask=self.mask if self.config.use_wam else None,
            config=self.config.adaptation,
        )
        self.adapted = result.predictor
        self.last_adaptation = result
        return self

    def adapt_many(
        self, supports: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> list[AdaptationResult]:
        """Adapt the meta-trained predictor to many target tasks at once.

        All targets fine-tune in one stacked-parameter graph (see
        :func:`repro.meta.adaptation.adapt_predictor_batch`) — the fast path
        for benchmark tables that adapt the same initialisation to every test
        workload.  Labels are standardised with the source statistics, like
        :meth:`adapt`; the framework's ``adapted`` state is left on the
        *last* target so ``predict`` keeps its usual meaning for sequential
        use, while each returned result carries its own adapted predictor.
        Note the returned predictors emit *standardised* labels; assign one
        to ``self.adapted`` (or reuse ``predict`` per target) to get physical
        units back.
        """
        if self.meta_model is None:
            raise RuntimeError("adapt_many() called before pretrain()")
        prepared = []
        for support_x, support_y in supports:
            support_x = as_2d(support_x)
            prepared.append(
                (support_x, self._scale(as_1d(support_y, support_x.shape[0])))
            )
        results = adapt_predictor_batch(
            self.meta_model,
            prepared,
            mask=self.mask if self.config.use_wam else None,
            config=self.config.adaptation,
        )
        if results:
            self.adapted = results[-1].predictor
            self.last_adaptation = results[-1]
        return results

    # -- exploration -----------------------------------------------------------------
    def explore(
        self,
        simulator,
        supports: "Mapping[str, tuple[np.ndarray, np.ndarray]]",
        *,
        objectives: "Optional[Mapping[str, 'MetaDSE']]" = None,
        objective_supports: "Optional[Mapping[str, Mapping[str, tuple[np.ndarray, np.ndarray]]]]" = None,
        maximize: "Optional[Mapping[str, bool]]" = None,
        candidate_pool: int = 1000,
        simulation_budget: int = 20,
        rounds: int = 1,
        seed: int = 0,
        strategy: str = "random",
        jobs: Optional[int] = None,
        executor: str = "thread",
        checkpoint=None,
        screen_tile: Optional[int] = None,
        focus: Optional[float] = None,
        focus_levels: int = 1,
        focus_probe: int = 64,
        store=None,
        trace=None,
    ):
        """Run a batched cross-workload DSE campaign with adapted predictors.

        The downstream use-case of the paper in one call: adapt this
        meta-trained predictor (and any companion models) to every target
        workload at once via :meth:`adapt_many` — one stacked fine-tuning
        graph per metric — then drive the
        :class:`~repro.dse.engine.CampaignEngine` campaign, where each
        workload screens a shared candidate pool with a
        :class:`~repro.dse.surrogates.StackedPredictorSurrogate` (all
        objectives answered in one batched forward) and the union of all
        selections is measured with a single ``run_sweep``.

        Parameters
        ----------
        simulator:
            The :class:`~repro.sim.simulator.Simulator` to spend the budget
            on (``evaluation_cache=True`` recommended for repeated
            campaigns).
        supports:
            ``{workload: (support_x, support_y)}`` — the few labelled
            samples per target workload for *this* model's metric; its keys
            define the campaign's workloads.
        objectives:
            Additional objective models, ``{metric: pretrained MetaDSE}``
            (e.g. ``{"power": power_model}`` next to an IPC-trained
            ``self``).  Each needs its own support labels in
            *objective_supports*.
        objective_supports:
            ``{metric: {workload: (support_x, support_y)}}`` for the
            companion models.
        maximize:
            Optimisation sense per metric; defaults to ``ipc`` maximised,
            everything else minimised.
        candidate_pool, simulation_budget, rounds, seed:
            Campaign knobs, forwarded to
            :meth:`~repro.dse.engine.CampaignEngine.run_campaign`.
        strategy:
            Candidate-generation strategy.  ``"random"`` (default) screens
            shared random pools (or attention-pruned ones with ``focus``);
            ``"nsga2"`` evolves each workload's pool with NSGA-II over its
            surrogate (:class:`~repro.dse.engine.NSGA2Evolve`, keyed
            per-``(workload, round)`` RNG streams); ``"portfolio"`` runs a
            :class:`~repro.dse.portfolio.StrategyPortfolio` — a per-workload
            UCB bandit over a random, a focused and an NSGA-II arm, scored
            by hypervolume slope (``docs/portfolio.md``).  The portfolio's
            warm-up plays each arm once, so give it ``rounds >= 3`` to get
            past round-robin.
        jobs, executor:
            Parallel campaign runtime: with ``jobs=N`` the per-workload
            screening and the union-measure sweep run on an executor of
            that width (``executor`` picks the kind, ``"thread"`` by
            default — nn surrogates are not cheaply picklable, and NumPy
            screening releases the GIL).  Results are bitwise identical to
            the serial campaign (``docs/runtime.md``).
        checkpoint:
            Optional path: completed campaign rounds are persisted there,
            and a killed campaign re-run with the same arguments resumes
            from the last completed round.
        screen_tile:
            Stream every screening step over candidate blocks of this many
            rows (``None`` screens the whole pool at once); bitwise
            identical either way (:func:`repro.dse.engine.screen_predict`).
        focus, focus_levels, focus_probe:
            Attention-guided design-space pruning (``docs/pruning.md``).
            With ``focus`` set, the shared candidate pool is drawn by a
            :class:`~repro.dse.engine.FocusedPool`: the adapted predictors'
            attention over ``focus_probe`` probe configurations is distilled
            into a pooled importance profile, the top ``focus`` fraction of
            parameters keep their full grids, and the rest collapse to a
            coarse grid of ``focus_levels`` levels (1 = clamped to the
            median level).  ``focus=None`` (default) leaves the campaign
            untouched; ``focus=1.0`` degrades to the unpruned pool bitwise.
        store:
            Optional persistent measurement store — a path or an open
            :class:`repro.store.MeasurementStore` — attached to
            *simulator* before the campaign (unless it already has one).
            Measurements land on disk and are reused across campaigns
            and processes: a re-run over a populated store re-simulates
            nothing it has seen, with bitwise-identical results
            (``docs/store.md``).
        trace:
            Optional path: activate :mod:`repro.obs` tracing for the
            whole exploration (adaptation + campaign) and write the span
            /metric trace there as JSONL (``docs/observability.md``).
            Campaign results are bitwise identical with tracing on or
            off; inspect the artifact with ``repro trace summarize``.

        Returns the engine's :class:`~repro.dse.engine.CampaignResult`
        (per-workload fronts + hypervolume curves, physical units).  Like
        :meth:`adapt_many`, the facade's ``adapted`` state is left on the
        last workload's predictor.
        """
        from repro.dse.engine import CampaignEngine, ObjectiveSet
        from repro.dse.surrogates import StackedPredictorSurrogate

        if trace is not None:
            # Re-enter with the session installed so the adaptation phase
            # is traced too; the campaign itself is unchanged either way
            # (the obs determinism contract, docs/observability.md).
            with obs.tracing(trace):
                with obs.span(
                    "explore",
                    strategy=strategy,
                    rounds=rounds,
                    workloads=len(supports),
                ):
                    return self.explore(
                        simulator,
                        supports,
                        objectives=objectives,
                        objective_supports=objective_supports,
                        maximize=maximize,
                        candidate_pool=candidate_pool,
                        simulation_budget=simulation_budget,
                        rounds=rounds,
                        seed=seed,
                        strategy=strategy,
                        jobs=jobs,
                        executor=executor,
                        checkpoint=checkpoint,
                        screen_tile=screen_tile,
                        focus=focus,
                        focus_levels=focus_levels,
                        focus_probe=focus_probe,
                        store=store,
                        trace=None,
                    )

        if self.meta_model is None:
            raise RuntimeError("explore() called before pretrain()")
        workloads = list(supports)
        if not workloads:
            raise ValueError("explore() needs at least one target workload")

        models: dict[str, MetaDSE] = {self._metric: self}
        for metric, model in (objectives or {}).items():
            if metric in models:
                raise ValueError(f"duplicate objective metric {metric!r}")
            if model.meta_model is None:
                raise RuntimeError(f"objective model for {metric!r} is not pretrained")
            models[metric] = model

        adapted: dict[str, list[AdaptationResult]] = {}
        for metric, model in models.items():
            if metric == self._metric:
                model_supports = supports
            else:
                model_supports = (objective_supports or {}).get(metric)
                if model_supports is None:
                    raise ValueError(
                        f"objective_supports must provide support sets for {metric!r}"
                    )
            missing = [w for w in workloads if w not in model_supports]
            if missing:
                raise ValueError(f"supports for {metric!r} are missing workloads {missing}")
            with obs.span("explore.adapt", metric=metric):
                with self._thread_scope():
                    adapted[metric] = model.adapt_many(
                        [model_supports[workload] for workload in workloads]
                    )

        if store is not None and getattr(simulator, "store", None) is None:
            simulator.attach_store(store)

        objective_set = ObjectiveSet.from_names(tuple(models), maximize)
        surrogates = {
            workload: StackedPredictorSurrogate(
                [adapted[metric][index].predictor for metric in models],
                objective_set.names,
                label_means=[models[metric]._label_mean for metric in models],
                label_stds=[models[metric]._label_std for metric in models],
            )
            for index, workload in enumerate(workloads)
        }
        engine = CampaignEngine(
            simulator.space,
            simulator,
            objective_set,
            seed=seed,
            screen_tile=screen_tile,
        )

        if focus is not None and not 0.0 < focus <= 1.0:
            raise ValueError(f"focus must be in (0, 1], got {focus}")

        def harvest_profile():
            # One pooled profile for the campaign: probe once, harvest each
            # workload's stacked surrogate, average.  Fixed-profile
            # FocusedPool stays surrogate-independent, so the shared-pool
            # fast path, the DAG runtime, and checkpoint resume all still
            # apply.
            from repro.designspace.sampling import RandomSampler
            from repro.meta.wam import merge_profiles

            probe = RandomSampler(simulator.space, seed=seed).sample(focus_probe)
            probe_features = engine.encoder.encode_batch(probe)
            with self._thread_scope():
                return merge_profiles(
                    [
                        surrogates[workload].attention_profile(probe_features)
                        for workload in workloads
                    ]
                )

        generator = None
        if strategy == "random":
            if focus is not None:
                from repro.dse.engine import FocusedPool

                generator = FocusedPool(
                    candidate_pool,
                    keep_fraction=focus,
                    coarse_levels=focus_levels,
                    profile=harvest_profile() if focus < 1.0 else None,
                    refocus=False,
                )
        elif strategy == "nsga2":
            from repro.dse.engine import NSGA2Evolve

            if focus is not None:
                raise ValueError(
                    "focus= prunes candidate pools, which NSGA-II evolution "
                    "does not sample; use strategy='portfolio' to combine them"
                )
            generator = NSGA2Evolve(seed=seed)
        elif strategy == "portfolio":
            from repro.dse.engine import FocusedPool, NSGA2Evolve, RandomPool
            from repro.dse.portfolio import StrategyPortfolio

            keep = focus if focus is not None else 0.5
            generator = StrategyPortfolio(
                {
                    "random": RandomPool(candidate_pool, seed=seed),
                    "focused": FocusedPool(
                        candidate_pool,
                        keep_fraction=keep,
                        coarse_levels=focus_levels,
                        profile=harvest_profile() if keep < 1.0 else None,
                        refocus=False,
                        seed=seed,
                    ),
                    "nsga2": NSGA2Evolve(seed=seed),
                }
            )
        else:
            raise ValueError(
                f"unknown strategy {strategy!r}: expected 'random', 'nsga2' "
                f"or 'portfolio'"
            )

        from repro.runtime.executors import resolve_executor

        campaign_executor = resolve_executor(jobs, executor)
        try:
            with self._thread_scope():
                return engine.run_campaign(
                    workloads,
                    surrogates,
                    generator=generator,
                    candidate_pool=candidate_pool,
                    simulation_budget=simulation_budget,
                    rounds=rounds,
                    executor=campaign_executor,
                    checkpoint=checkpoint,
                )
        finally:
            if campaign_executor is not None:
                campaign_executor.shutdown()

    # -- inference -----------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict the target metric (physical units) for unseen configurations."""
        model = self.adapted if self.adapted is not None else self.meta_model
        if model is None:
            raise RuntimeError("predict() called before pretrain()")
        with self._thread_scope():
            return self._unscale(model.predict(as_2d(features)))

    def importance_profile(self, features: np.ndarray, *, workload=None):
        """Distil a parameter-importance profile from the current predictor.

        One eval-mode forward over *features* through the adapted (or, before
        adaptation, the meta-trained) predictor, returning the normalized
        :class:`~repro.meta.wam.ImportanceProfile` the pruning layer consumes
        (``docs/pruning.md``).  Deterministic for fixed weights and features,
        bitwise invariant to the kernel thread count.
        """
        from repro.meta.wam import importance_profile as _importance_profile

        model = self.adapted if self.adapted is not None else self.meta_model
        if model is None:
            raise RuntimeError("importance_profile() called before pretrain()")
        with self._thread_scope():
            return _importance_profile(model, as_2d(features), workload=workload)

    # -- persistence helpers -----------------------------------------------------------
    def save_pretrained(self, path) -> None:
        """Persist the meta-trained predictor, mask and label scaling."""
        if self.meta_model is None:
            raise RuntimeError("save_pretrained() called before pretrain()")
        from repro.nn.serialization import save_model

        header = {
            "num_parameters": self.num_parameters,
            "metric": self._metric,
            "label_mean": self._label_mean,
            "label_std": self._label_std,
            "use_wam": self.config.use_wam,
            "mask": self.mask.bias.tolist() if self.mask is not None else None,
        }
        save_model(self.meta_model, path, header=header)

    def load_pretrained(self, path) -> "MetaDSE":
        """Load a previously saved meta-trained predictor."""
        from repro.meta.wam import ArchitecturalMask, WAMConfig
        from repro.nn.serialization import load_state

        state, header = load_state(path)
        predictor_cfg = self.config.predictor
        self.meta_model = TransformerPredictor(
            self.num_parameters,
            embed_dim=predictor_cfg.embed_dim,
            num_heads=predictor_cfg.num_heads,
            num_layers=predictor_cfg.num_layers,
            head_hidden=predictor_cfg.head_hidden,
            dropout=predictor_cfg.dropout,
            seed=self.config.seed,
        )
        if self.precision is not None:
            self.meta_model.to_dtype(self.precision)
        elif header.get("dtype") is not None:
            # No explicit facade precision: adopt the checkpoint's recorded
            # dtype so a float32 save round-trips as a float32 model.
            self.meta_model.to_dtype(header["dtype"])
        # load_state_dict casts the checkpoint arrays to the model's dtype,
        # so a float64 checkpoint loads into a float32 facade (and back).
        self.meta_model.load_state_dict(state)
        self._metric = header.get("metric", "ipc")
        self._label_mean = float(header.get("label_mean", 0.0))
        self._label_std = float(header.get("label_std", 1.0))
        mask_bias = header.get("mask")
        if mask_bias is not None:
            bias = np.asarray(mask_bias, dtype=np.float64)
            self.mask = ArchitecturalMask(
                bias=bias,
                frequency=np.zeros_like(bias),
                kept=bias >= 0,
                config=WAMConfig(),
            )
        return self
