"""Experiment-level configuration for the MetaDSE facade.

Two scales are provided:

* :func:`default_config` — sized so the whole benchmark suite runs on a
  single CPU core in minutes (the numpy substrate is orders of magnitude
  slower than the GPU/PyTorch setup of the paper);
* :func:`paper_scale_config` — the hyper-parameters quoted in Section VI-A
  (15 epochs, 200 tasks per workload, 5/45 support/query, 1e-5 / 1e-4
  learning rates), selected when the environment variable
  ``METADSE_FULL_EVAL`` is set.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.meta.adaptation import PAPER_ADAPTATION_CONFIG, AdaptationConfig
from repro.meta.maml import PAPER_MAML_CONFIG, MAMLConfig
from repro.meta.wam import WAMConfig

#: Environment variable that switches every experiment to paper-scale settings.
FULL_EVAL_ENV = "METADSE_FULL_EVAL"


@dataclass
class PredictorConfig:
    """Architecture of the transformer surrogate."""

    embed_dim: int = 32
    num_heads: int = 4
    num_layers: int = 2
    head_hidden: int = 64
    dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.embed_dim % self.num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")


@dataclass
class MetaDSEConfig:
    """Everything the MetaDSE facade needs."""

    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    maml: MAMLConfig = field(default_factory=MAMLConfig)
    adaptation: AdaptationConfig = field(default_factory=AdaptationConfig)
    wam: WAMConfig = field(default_factory=WAMConfig)
    use_wam: bool = True
    standardize_labels: bool = True
    seed: int = 0


def is_full_eval() -> bool:
    """True when paper-scale evaluation is requested via the environment."""
    return os.environ.get(FULL_EVAL_ENV, "").strip() not in ("", "0", "false", "False")


def default_config(*, use_wam: bool = True, seed: int = 0) -> MetaDSEConfig:
    """Single-core-friendly configuration used by tests and benchmarks."""
    return MetaDSEConfig(
        predictor=PredictorConfig(embed_dim=24, num_heads=4, num_layers=2, head_hidden=48),
        maml=MAMLConfig(
            inner_lr=0.02,
            outer_lr=2e-3,
            inner_steps=3,
            meta_epochs=4,
            tasks_per_workload=24,
            meta_batch_size=4,
            support_size=5,
            query_size=20,
            seed=seed,
        ),
        adaptation=AdaptationConfig(steps=12, lr=0.02),
        wam=WAMConfig(episodes_per_workload=3),
        use_wam=use_wam,
        seed=seed,
    )


def paper_scale_config(*, use_wam: bool = True, seed: int = 0) -> MetaDSEConfig:
    """The configuration quoted in Section VI-A of the paper."""
    return MetaDSEConfig(
        predictor=PredictorConfig(embed_dim=64, num_heads=8, num_layers=3, head_hidden=128),
        maml=replace(PAPER_MAML_CONFIG, seed=seed),
        adaptation=replace(PAPER_ADAPTATION_CONFIG),
        wam=WAMConfig(),
        use_wam=use_wam,
        seed=seed,
    )


def experiment_config(*, use_wam: bool = True, seed: int = 0) -> MetaDSEConfig:
    """Pick the configuration according to ``METADSE_FULL_EVAL``."""
    if is_full_eval():
        return paper_scale_config(use_wam=use_wam, seed=seed)
    return default_config(use_wam=use_wam, seed=seed)
