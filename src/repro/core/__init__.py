"""High-level MetaDSE API: the framework facade and experiment configuration."""

from repro.core.config import (
    FULL_EVAL_ENV,
    MetaDSEConfig,
    PredictorConfig,
    default_config,
    experiment_config,
    is_full_eval,
    paper_scale_config,
)
from repro.core.metadse import MetaDSE, PretrainReport

__all__ = [
    "MetaDSE",
    "PretrainReport",
    "MetaDSEConfig",
    "PredictorConfig",
    "default_config",
    "paper_scale_config",
    "experiment_config",
    "is_full_eval",
    "FULL_EVAL_ENV",
]
