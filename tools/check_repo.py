#!/usr/bin/env python
"""Repository hygiene checker (the ``make repo-check`` target).

PR 6 accidentally committed 88 ``src/**/__pycache__/*.pyc`` files — bytecode
is machine-local noise that bloats diffs and goes stale the moment the
source changes.  ``.gitignore`` keeps *new* artifacts out of ``git add``,
but nothing in the toolchain noticed the already-tracked ones; this check
closes that hole by failing whenever any compiled/bytecode/build artifact
is **git-tracked**, so the problem can never land again.

The classification lives in :func:`find_tracked_artifacts`, a pure function
over a path list, so the unit tests (``tests/test_tools_checks.py``) verify
the rules against planted offenders without touching the real index.

Exits non-zero listing every offence; wired as a prerequisite of
``make test`` next to ``tools/check_docs.py``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path, PurePosixPath

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Path components that mark everything beneath them as an artifact.
ARTIFACT_DIRS = frozenset({"__pycache__", ".eggs", ".pytest_cache"})

#: File suffixes of compiled / bytecode / native-build outputs, plus
#: measurement-store artifacts (``.seg`` segment logs are machine-local
#: measurement caches — see docs/store.md — and must never be committed)
#: and trace files (``.trace.jsonl`` is per-run telemetry — see
#: docs/observability.md — not a committed artefact).
ARTIFACT_SUFFIXES = (
    ".pyc",
    ".pyo",
    ".pyd",
    ".so",
    ".dylib",
    ".o",
    ".a",
    ".whl",
    ".seg",
    ".trace.jsonl",
)

#: Directory-name suffixes of packaging / measurement-store output (any
#: path component): everything inside a ``*.store`` directory — manifest,
#: segments, lock file — is a local cache, like ``*.egg-info`` contents.
ARTIFACT_DIR_SUFFIXES = (".egg-info", ".store")


def is_artifact(path: str) -> bool:
    """True when *path* (repo-relative, posix) is a build/bytecode artifact."""
    pure = PurePosixPath(path)
    if any(part in ARTIFACT_DIRS for part in pure.parts):
        return True
    if any(part.endswith(ARTIFACT_DIR_SUFFIXES) for part in pure.parts):
        return True
    return pure.name.endswith(ARTIFACT_SUFFIXES)


def find_tracked_artifacts(paths: list[str]) -> list[str]:
    """The subset of *paths* that must never be git-tracked, in order."""
    return [path for path in paths if is_artifact(path)]


def tracked_files() -> list[str]:
    """Every git-tracked path (staged additions included) as posix strings."""
    output = subprocess.run(
        ["git", "ls-files", "-z"],
        cwd=REPO_ROOT,
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    return [path for path in output.split("\0") if path]


def main() -> int:
    offenders = find_tracked_artifacts(tracked_files())
    if offenders:
        print(f"repo-check: {len(offenders)} tracked artifact(s)")
        for path in offenders:
            print(f"  git-tracked build/bytecode artifact -> {path}")
        print("  (git rm --cached them; .gitignore already covers the patterns)")
        return 1
    print("repo-check: OK (no tracked build/bytecode artifacts)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
