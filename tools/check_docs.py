#!/usr/bin/env python
"""Documentation consistency checker (the ``make docs-check`` target).

Three failure classes, all of which have bitten stale docs before:

1. **Dead intra-repo links** — every relative markdown link in the repo's
   top-level ``*.md`` files and ``docs/*.md`` must point at a file or
   directory that exists (external ``http(s)``/``mailto`` links and pure
   ``#anchor`` links are not checked).
2. **Stale module references** — ``docs/*.md`` and ``README.md`` routinely
   name modules (``repro.nn.precision``, ``src/repro/meta/maml.py``,
   ``benchmarks/test_meta_throughput.py``).  Every such reference must
   resolve to an existing file: dotted ``repro.…`` names are resolved
   against ``src/`` (a trailing attribute like ``repro.nn.tensor.stack`` is
   fine — some prefix must resolve to a module), and path-like references
   are resolved against the repo root.
3. **Uncataloged benchmark results** — ``benchmarks/results/*.json`` files
   are committed artefacts whose meaning lives in the ``docs/benchmarks.md``
   catalog.  Every result JSON must be named there, so a benchmark cannot
   land (or be renamed) without its catalog row.
4. **Unreferenced examples** — every ``examples/*.py`` script must be named
   in the README's module map / examples list.  Examples are the narrated
   entry points; one that is not discoverable from the README is dead
   documentation (and a new example cannot land without its README line).

Exits non-zero listing every offence, so it can gate ``make test``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose links are validated.
LINKED_FILES = sorted(REPO_ROOT.glob("*.md")) + sorted((REPO_ROOT / "docs").glob("*.md"))

#: Files whose prose module references are validated.
MODULE_REF_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_DOTTED = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
_PATHLIKE = re.compile(
    r"\b((?:src/repro|benchmarks|examples|tests|tools|docs)/[A-Za-z0-9_\-./]+)"
)


def check_links(path: Path) -> list[str]:
    """Return one message per dead relative link in *path*."""
    errors = []
    for match in _LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: dead link -> {target}")
    return errors


def _dotted_resolves(name: str) -> bool:
    """True when a dotted ``repro.…`` reference names something that exists.

    The longest prefix that is a module file (``repro.nn.tensor`` →
    ``src/repro/nn/tensor.py``) accepts any attribute tail (``….stack``) —
    attributes of a real module are not the staleness this tool hunts.  A
    tail hanging off a *package* directory, however, must be an attribute
    the package actually exports (``repro.nn.vanished_module`` is exactly
    the stale reference to catch), which is checked by importing it.
    """
    parts = name.split(".")
    for end in range(len(parts), 0, -1):
        base = REPO_ROOT / "src" / Path(*parts[:end])
        if base.with_suffix(".py").exists():
            return True
        if base.is_dir():
            if end == len(parts):
                return True
            return _package_has_attribute(".".join(parts[:end]), parts[end])
    return False


def _package_has_attribute(package: str, attribute: str) -> bool:
    import importlib

    source = str(REPO_ROOT / "src")
    if source not in sys.path:
        sys.path.insert(0, source)
    try:
        return hasattr(importlib.import_module(package), attribute)
    except Exception:
        return False


def check_module_references(path: Path) -> list[str]:
    """Return one message per stale module reference in *path*."""
    text = path.read_text()
    errors = []
    for match in _DOTTED.finditer(text):
        if not _dotted_resolves(match.group(0)):
            errors.append(
                f"{path.relative_to(REPO_ROOT)}: stale module reference -> "
                f"{match.group(0)}"
            )
    for match in _PATHLIKE.finditer(text):
        reference = match.group(1).rstrip(".")
        # Globby/illustrative references (benchmarks/test_*.py) are skipped.
        if "*" in reference:
            continue
        if not (REPO_ROOT / reference).exists():
            errors.append(
                f"{path.relative_to(REPO_ROOT)}: stale path reference -> {reference}"
            )
    return errors


def check_benchmark_catalog() -> list[str]:
    """Return one message per ``benchmarks/results/*.json`` not cataloged."""
    catalog = REPO_ROOT / "docs" / "benchmarks.md"
    results = sorted((REPO_ROOT / "benchmarks" / "results").glob("*.json"))
    if not results:
        return []
    if not catalog.exists():
        return ["docs/benchmarks.md: missing (benchmark results need a catalog)"]
    text = catalog.read_text()
    return [
        f"docs/benchmarks.md: uncataloged benchmark result -> "
        f"benchmarks/results/{result.name}"
        for result in results
        if result.name not in text
    ]


def check_examples_referenced() -> list[str]:
    """Return one message per ``examples/*.py`` not named in the README."""
    readme = REPO_ROOT / "README.md"
    if not readme.exists():
        return ["README.md: missing (examples need a README reference)"]
    text = readme.read_text()
    return [
        f"README.md: unreferenced example -> examples/{script.name} "
        f"(add it to the examples list in the module map section)"
        for script in sorted((REPO_ROOT / "examples").glob("*.py"))
        if f"examples/{script.name}" not in text
    ]


def main() -> int:
    errors: list[str] = []
    for path in LINKED_FILES:
        errors.extend(check_links(path))
    for path in MODULE_REF_FILES:
        errors.extend(check_module_references(path))
    errors.extend(check_benchmark_catalog())
    errors.extend(check_examples_referenced())
    if errors:
        print(f"docs-check: {len(errors)} problem(s)")
        for error in errors:
            print(f"  {error}")
        return 1
    checked = {p.relative_to(REPO_ROOT) for p in LINKED_FILES + MODULE_REF_FILES}
    print(f"docs-check: OK ({len(checked)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
